// Package storage provides the in-memory row store and catalog the engine
// runs against. Tables are append-only slices of rows; the engine is an
// analytical/publishing engine in the spirit of the paper's workload, so
// there is no update path or transaction machinery.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// Table is a base relation: a definition plus its rows.
type Table struct {
	Def  *schema.TableDef
	Rows []types.Row
}

// Append adds a row after validating its arity and column types (NULL is
// accepted in any column).
func (t *Table) Append(r types.Row) error {
	if len(r) != t.Def.Schema.Len() {
		return fmt.Errorf("storage: table %s expects %d columns, got %d", t.Def.Name, t.Def.Schema.Len(), len(r))
	}
	for i, v := range r {
		if v.IsNull() {
			continue
		}
		want := t.Def.Schema.Cols[i].Type
		if v.K != want && !(v.K.Numeric() && want.Numeric()) {
			return fmt.Errorf("storage: table %s column %s expects %s, got %s",
				t.Def.Name, t.Def.Schema.Cols[i].Name, want, v.K)
		}
	}
	t.Rows = append(t.Rows, r)
	return nil
}

// Cardinality returns the number of rows.
func (t *Table) Cardinality() int { return len(t.Rows) }

// Catalog maps table names to tables and answers the key/foreign-key
// questions the optimizer asks.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// indexes maps lowercase index name → ordered secondary index
	// (index.go); nil until the first CreateIndex.
	indexes map[string]*Index
	// version counts schema changes (Create/Drop, CreateIndex/DropIndex).
	// Plans compiled against one version are invalid under another; the
	// statement plan cache keys on it.
	version atomic.Uint64
}

// Version returns the schema-change counter. Safe for concurrent use.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create registers a new, empty table. The name must be unused.
func (c *Catalog) Create(def *schema.TableDef) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(def.Name)
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", def.Name)
	}
	// Qualify the table's columns with its own name so unaliased scans
	// resolve `table.column` references.
	qualified := def.Schema.Rename(def.Name)
	def = &schema.TableDef{Name: def.Name, Schema: qualified, PrimaryKey: def.PrimaryKey, ForeignKeys: def.ForeignKeys}
	t := &Table{Def: def}
	c.tables[key] = t
	c.version.Add(1)
	return t, nil
}

// Drop removes a table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("storage: unknown table %q", name)
	}
	delete(c.tables, key)
	for iname, ix := range c.indexes {
		if strings.EqualFold(ix.Table, name) {
			delete(c.indexes, iname)
		}
	}
	c.version.Add(1)
	return nil
}

// Lookup finds a table by name (case-insensitive).
func (c *Catalog) Lookup(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return t, nil
}

// Names returns the sorted table names, for the shell's \dt and tests.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Def.Name)
	}
	sort.Strings(out)
	return out
}

// HasForeignKey reports whether fromTable has a declared foreign key on
// fromCols referencing toTable's toCols (order-insensitive on pairs).
// This is the check behind "every join above n is a foreign-key join"
// in the invariant-grouping rule.
func (c *Catalog) HasForeignKey(fromTable string, fromCols []string, toTable string, toCols []string) bool {
	t, err := c.Lookup(fromTable)
	if err != nil || len(fromCols) != len(toCols) || len(fromCols) == 0 {
		return false
	}
	for _, fk := range t.Def.ForeignKeys {
		if !strings.EqualFold(fk.RefTable, toTable) || len(fk.Cols) != len(fromCols) {
			continue
		}
		if pairsMatch(fk.Cols, fk.RefCols, fromCols, toCols) {
			return true
		}
	}
	return false
}

// IsPrimaryKey reports whether cols covers the primary key of table.
func (c *Catalog) IsPrimaryKey(table string, cols []string) bool {
	t, err := c.Lookup(table)
	if err != nil {
		return false
	}
	return t.Def.IsKey(cols)
}

func pairsMatch(fkCols, fkRef, fromCols, toCols []string) bool {
	used := make([]bool, len(fromCols))
	for i := range fkCols {
		found := false
		for j := range fromCols {
			if used[j] {
				continue
			}
			if strings.EqualFold(fkCols[i], fromCols[j]) && strings.EqualFold(fkRef[i], toCols[j]) {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
