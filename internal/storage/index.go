package storage

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gapplydb/internal/types"
)

// Index is an ordered secondary index: a sorted run over one table's
// rows. The run holds the order-preserving encoding of the key columns
// (types.AppendOrderKeys) and the heap positions sorted by those bytes —
// a stable sort, so rows with equal keys stay in heap order. That tie
// rule is load-bearing: it makes an index scan byte-identical to the
// executor's stable in-memory sort of a heap scan, which is what lets
// the planner elide sorts without changing output.
//
// The store is append-only, so a run is valid as long as the table's
// cardinality matches the cardinality it was built at; Run rebuilds
// lazily when the table has grown (or shrunk, impossible today) since.
type Index struct {
	Name  string
	Table string
	// Cols are the key column names (unqualified), outermost first. All
	// orderings are ascending; ties are heap position order.
	Cols []string
	// ords are the key columns' ordinals in the table schema.
	ords []int

	mu    sync.Mutex
	built int // table cardinality the current run was built at
	run   *IndexRun
}

// IndexRun is an immutable snapshot of a sorted run: Keys[i] is the
// encoded key of the row at heap position Pos[i], and Keys is
// non-decreasing. Safe for concurrent readers.
type IndexRun struct {
	Keys [][]byte
	Pos  []int32
}

// Len returns the run's entry count.
func (r *IndexRun) Len() int { return len(r.Pos) }

// SeekGE returns the first run offset whose key is ≥ k (Len if none).
func (r *IndexRun) SeekGE(k []byte) int {
	return sort.Search(len(r.Keys), func(i int) bool { return bytes.Compare(r.Keys[i], k) >= 0 })
}

// SeekGT returns the first run offset whose key is > k (Len if none).
func (r *IndexRun) SeekGT(k []byte) int {
	return sort.Search(len(r.Keys), func(i int) bool { return bytes.Compare(r.Keys[i], k) > 0 })
}

// Ords returns the key columns' ordinals in the table schema.
func (ix *Index) Ords() []int { return ix.ords }

// Run returns the current sorted run for t, rebuilding it first if the
// table has grown since the last build. Concurrent queries may race to
// rebuild; the mutex makes the rebuild happen once.
func (ix *Index) Run(t *Table) *IndexRun {
	n := len(t.Rows)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.run != nil && ix.built == n {
		return ix.run
	}
	heapKeys := make([][]byte, n)
	// One backing buffer for all keys keeps the build allocation-light;
	// the per-row keys are three-index subslices so they never alias.
	buf := make([]byte, 0, n*16)
	for i, r := range t.Rows {
		start := len(buf)
		buf = r.AppendOrderKeys(buf, ix.ords)
		heapKeys[i] = buf[start:len(buf):len(buf)]
	}
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = int32(i)
	}
	sort.SliceStable(pos, func(a, b int) bool {
		return bytes.Compare(heapKeys[pos[a]], heapKeys[pos[b]]) < 0
	})
	keys := make([][]byte, n)
	for i, p := range pos {
		keys[i] = heapKeys[p]
	}
	ix.run = &IndexRun{Keys: keys, Pos: pos}
	ix.built = n
	return ix.run
}

// lockedIndexes returns the catalog's index map, creating it on first
// use. Caller holds c.mu.
func (c *Catalog) lockedIndexes() map[string]*Index {
	if c.indexes == nil {
		c.indexes = make(map[string]*Index)
	}
	return c.indexes
}

// CreateIndex registers an ordered secondary index over the named
// columns of table. The key encoding and the ascending-with-stable-ties
// order are fixed; there is no DESC or uniqueness option. The run itself
// is built lazily on first use (and rebuilt when the table grows).
// Creating an index bumps the catalog version, so cached plans recompile
// and can pick the new access path up.
func (c *Catalog) CreateIndex(name, table string, cols ...string) (*Index, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: index %q needs at least one column", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", table)
	}
	key := strings.ToLower(name)
	idxs := c.lockedIndexes()
	if _, dup := idxs[key]; dup {
		return nil, fmt.Errorf("storage: index %q already exists", name)
	}
	ords := make([]int, len(cols))
	for i, col := range cols {
		ord, err := t.Def.Schema.Resolve(t.Def.Name, col)
		if err != nil {
			return nil, fmt.Errorf("storage: index %q: %w", name, err)
		}
		ords[i] = ord
	}
	ix := &Index{Name: name, Table: t.Def.Name, Cols: append([]string(nil), cols...), ords: ords}
	idxs[key] = ix
	c.version.Add(1)
	return ix, nil
}

// DropIndex removes an index by name and bumps the catalog version.
func (c *Catalog) DropIndex(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.indexes[key]; !ok {
		return fmt.Errorf("storage: unknown index %q", name)
	}
	delete(c.indexes, key)
	c.version.Add(1)
	return nil
}

// LookupIndex finds an index by name (case-insensitive).
func (c *Catalog) LookupIndex(name string) (*Index, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.indexes[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: unknown index %q", name)
	}
	return ix, nil
}

// Indexes returns every index sorted by name, for gsql's \indexes and
// the tests.
func (c *Catalog) Indexes() []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Index, 0, len(c.indexes))
	for _, ix := range c.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// OrderedIndex returns an index of table whose key columns are exactly
// cols, in order — the lookup the planner's order-placement pass makes.
// Exact equality (not prefix match) is required: an index with extra
// trailing key columns orders equal-prefix rows by those columns instead
// of by heap position, which would change tie order relative to the
// stable sorts it must substitute for.
func (c *Catalog) OrderedIndex(table string, cols []string) *Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, ix := range c.indexes {
		if !strings.EqualFold(ix.Table, table) || len(ix.Cols) != len(cols) {
			continue
		}
		match := true
		for i := range cols {
			if !strings.EqualFold(ix.Cols[i], cols[i]) {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// EncodeIndexKey encodes a probe value in the index key format, for
// range seeks against a run. Multi-column probes concatenate.
func EncodeIndexKey(dst []byte, v types.Value) []byte { return v.AppendOrderKey(dst) }
