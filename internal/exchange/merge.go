package exchange

import (
	"fmt"
	"math"
)

// CompareValues is types.SortCompare transplanted onto decoded wire
// values (nil, int64, float64, string, bool): NULL sorts first,
// int/float cross-compare exactly, NaN orders after every non-NaN
// float and equals itself, and incomparable kinds order by kind tag.
// The coordinator merges what shards send over the wire, so the
// comparator must agree with the engine's sort order on those
// representations bit for bit (dates travel as int64 and keep the
// engine's date order).
func CompareValues(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch av := a.(type) {
	case int64:
		switch bv := b.(type) {
		case int64:
			return cmpOrdered(av, bv)
		case float64:
			return compareIntFloat(av, bv)
		}
	case float64:
		switch bv := b.(type) {
		case int64:
			return -compareIntFloat(bv, av)
		case float64:
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			case av == bv:
				return 0
			}
			// At least one NaN: NaN sorts after every non-NaN float
			// and equals itself.
			switch {
			case math.IsNaN(av) && math.IsNaN(bv):
				return 0
			case math.IsNaN(av):
				return 1
			default:
				return -1
			}
		}
	case string:
		if bv, ok := b.(string); ok {
			return cmpOrdered(av, bv)
		}
	case bool:
		if bv, ok := b.(bool); ok {
			switch {
			case av == bv:
				return 0
			case !av:
				return -1
			default:
				return 1
			}
		}
	}
	// Incomparable kinds: order by kind tag, mirroring types.Kind order.
	return cmpOrdered(kindRank(a), kindRank(b))
}

func cmpOrdered[T int | int64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// kindRank mirrors the types.Kind tag order (Null, Int, Float, String,
// Bool) for the wire representations.
func kindRank(v any) int {
	switch v.(type) {
	case nil:
		return 0
	case int64:
		return 1
	case float64:
		return 2
	case string:
		return 3
	case bool:
		return 4
	default:
		return 5
	}
}

// compareIntFloat compares an int64 against a float64 exactly, without
// rounding the integer through a float64 image; it is the same total
// placement as the engine's (NaN after every integer).
func compareIntFloat(i int64, f float64) int {
	const maxInt64f = 9223372036854775808.0 // 2^63, exactly representable
	switch {
	case math.IsNaN(f):
		return -1
	case f >= maxInt64f:
		return -1
	case f < -maxInt64f:
		return 1
	}
	t := math.Trunc(f) // in [-2^63, 2^63): int64(t) is defined
	ti := int64(t)
	switch {
	case i < ti:
		return -1
	case i > ti:
		return 1
	case f > t: // equal integer parts; a positive fraction makes f larger
		return -1
	case f < t:
		return 1
	}
	return 0
}

// CompareRows orders two rows on the merge keys (Desc reverses a key).
func CompareRows(a, b []any, keys []MergeKey) int {
	for _, k := range keys {
		c := CompareValues(a[k.Ord], b[k.Ord])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// RowSource is one shard's result stream as the merge consumes it.
type RowSource interface {
	// Next returns the next row, or ok=false at end of stream.
	Next() (row []any, ok bool, err error)
}

// Merge is the order-preserving gather: a k-way merge of per-shard
// streams on the merge keys. Per-source order is preserved, and ties
// across sources break by source index — by construction ties across
// shards cannot occur when a merge key is a partition key, so the
// tie-break only makes the order total, it never decides real output.
type Merge struct {
	keys  []MergeKey
	srcs  []RowSource
	heads [][]any
	done  []bool
	init  bool
}

// NewMerge builds a merge over the sources; Next pulls lazily.
func NewMerge(srcs []RowSource, keys []MergeKey) *Merge {
	return &Merge{
		keys:  keys,
		srcs:  srcs,
		heads: make([][]any, len(srcs)),
		done:  make([]bool, len(srcs)),
	}
}

// Next returns the globally next row, or ok=false when every source is
// exhausted. The first error from any source stops the merge.
func (m *Merge) Next() ([]any, bool, error) {
	if !m.init {
		m.init = true
		for i := range m.srcs {
			if err := m.pull(i); err != nil {
				return nil, false, err
			}
		}
	}
	best := -1
	for i, h := range m.heads {
		if m.done[i] || h == nil {
			continue
		}
		if best < 0 || CompareRows(h, m.heads[best], m.keys) < 0 {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	row := m.heads[best]
	if err := m.pull(best); err != nil {
		return nil, false, err
	}
	return row, true, nil
}

func (m *Merge) pull(i int) error {
	row, ok, err := m.srcs[i].Next()
	if err != nil {
		return err
	}
	if !ok {
		m.done[i] = true
		m.heads[i] = nil
		return nil
	}
	m.heads[i] = row
	return nil
}

// CombineAggRows folds per-shard partial aggregate rows (exactly one
// row per shard, one combine per column) into the global row. NULL
// partials come from empty shards and are skipped; an all-NULL column
// stays NULL — except counts, which are never NULL and sum from zero.
func CombineAggRows(rows [][]any, combines []CombineFn) ([]any, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("exchange: no partial aggregate rows to combine")
	}
	out := make([]any, len(combines))
	for j, fn := range combines {
		var acc any
		for i, row := range rows {
			if len(row) != len(combines) {
				return nil, fmt.Errorf("exchange: partial row %d has %d columns, want %d", i, len(row), len(combines))
			}
			v := row[j]
			if v == nil {
				continue
			}
			switch fn {
			case CombineCount, CombineSum:
				n, ok := v.(int64)
				if !ok {
					return nil, fmt.Errorf("exchange: partial %v is %T, want int64", v, v)
				}
				if acc == nil {
					acc = n
				} else {
					acc = acc.(int64) + n
				}
			case CombineMin:
				if acc == nil || CompareValues(v, acc) < 0 {
					acc = v
				}
			case CombineMax:
				if acc == nil || CompareValues(v, acc) > 0 {
					acc = v
				}
			}
		}
		if acc == nil && fn == CombineCount {
			acc = int64(0)
		}
		out[j] = acc
	}
	return out, nil
}
