package exchange

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"gapplydb/internal/types"
)

// toValue maps a decoded wire value back to the engine value it came
// from, for checking that CompareValues mirrors types.SortCompare.
func toValue(t *testing.T, v any) types.Value {
	t.Helper()
	switch x := v.(type) {
	case nil:
		return types.Null
	case int64:
		return types.NewInt(x)
	case float64:
		return types.NewFloat(x)
	case string:
		return types.NewString(x)
	case bool:
		return types.NewBool(x)
	default:
		t.Fatalf("no wire mapping for %T", v)
		return types.Null
	}
}

func TestCompareValuesMirrorsSortCompare(t *testing.T) {
	vals := []any{
		nil,
		int64(math.MinInt64), int64(-1), int64(0), int64(7), int64(math.MaxInt64),
		int64(1 << 53), int64(1<<53 + 1), // beyond float64 precision
		-math.MaxFloat64, -1.5, math.Copysign(0, -1), 0.0, 6.9, 7.0, 7.1,
		9.3e18, math.Inf(-1), math.Inf(1), math.NaN(),
		"", "a", "a\x00b", "z",
		false, true,
	}
	for _, a := range vals {
		for _, b := range vals {
			got := CompareValues(a, b)
			want := types.SortCompare(toValue(t, a), toValue(t, b))
			if got != want {
				t.Errorf("CompareValues(%#v, %#v) = %d, SortCompare = %d", a, b, got, want)
			}
		}
	}
}

func TestCompareRowsDesc(t *testing.T) {
	keys := []MergeKey{{Ord: 0, Desc: true}, {Ord: 1}}
	a := []any{int64(5), "x"}
	b := []any{int64(3), "x"}
	if c := CompareRows(a, b, keys); c >= 0 {
		t.Errorf("desc key: CompareRows = %d, want < 0", c)
	}
	c := []any{int64(5), "a"}
	if got := CompareRows(a, c, keys); got <= 0 {
		t.Errorf("tie on desc key falls to asc key: %d, want > 0", got)
	}
}

type sliceSource struct {
	rows [][]any
	i    int
}

func (s *sliceSource) Next() ([]any, bool, error) {
	if s.i >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.i]
	s.i++
	return r, true, nil
}

// TestMergeReproducesGlobalStream builds a globally sorted stream,
// restricts it to three shards by hashing the key column (so ties stay
// within one shard, as partitioning guarantees), and checks the merge
// reassembles the global stream exactly.
func TestMergeReproducesGlobalStream(t *testing.T) {
	var global [][]any
	for i := 0; i < 200; i++ {
		key := int64(i % 37) // duplicates, all on one shard
		global = append(global, []any{key, int64(i)})
	}
	sort.SliceStable(global, func(i, j int) bool {
		return global[i][0].(int64) < global[j][0].(int64)
	})

	shards := make([][][]any, 3)
	for _, r := range global {
		s := int(r[0].(int64)) % 3
		shards[s] = append(shards[s], r)
	}
	srcs := make([]RowSource, 3)
	for i := range shards {
		srcs[i] = &sliceSource{rows: shards[i]}
	}

	m := NewMerge(srcs, []MergeKey{{Ord: 0}})
	var got [][]any
	for {
		row, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, row)
	}
	if !reflect.DeepEqual(got, global) {
		t.Fatalf("merge diverged from global stream:\ngot  %v\nwant %v", got[:10], global[:10])
	}
}

func TestMergeDescending(t *testing.T) {
	s0 := &sliceSource{rows: [][]any{{int64(9)}, {int64(3)}}}
	s1 := &sliceSource{rows: [][]any{{int64(8)}, {int64(2)}}}
	m := NewMerge([]RowSource{s0, s1}, []MergeKey{{Ord: 0, Desc: true}})
	var got []int64
	for {
		row, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, row[0].(int64))
	}
	if want := []int64{9, 8, 3, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("desc merge = %v, want %v", got, want)
	}
}

func TestCombineAggRows(t *testing.T) {
	rows := [][]any{
		{int64(3), int64(10), int64(2), "m", nil},
		{int64(0), nil, int64(-5), "a", nil},
		{int64(4), int64(1), nil, "z", nil},
	}
	combines := []CombineFn{CombineCount, CombineSum, CombineMin, CombineMax, CombineSum}
	got, err := CombineAggRows(rows, combines)
	if err != nil {
		t.Fatal(err)
	}
	want := []any{int64(7), int64(11), int64(-5), "z", nil}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("combined = %#v, want %#v", got, want)
	}

	// A count over entirely empty shards is 0, not NULL.
	empty, err := CombineAggRows([][]any{{nil}, {nil}}, []CombineFn{CombineCount})
	if err != nil || empty[0] != int64(0) {
		t.Fatalf("empty count = %#v err=%v", empty, err)
	}

	if _, err := CombineAggRows([][]any{{"x"}}, []CombineFn{CombineSum}); err == nil {
		t.Fatal("non-integer sum partial accepted")
	}
	if _, err := CombineAggRows(nil, []CombineFn{CombineCount}); err == nil {
		t.Fatal("zero shard rows accepted")
	}
}
