// Package exchange analyzes a single-node plan for distributed
// execution over hash-partitioned shards and provides the
// order-preserving operators the coordinator needs to reassemble
// shard streams into the exact single-node output.
//
// The contract is the restriction property (P): each shard loads the
// same deterministic TPC-H stream and keeps only the rows it owns, so
// a shard's table heap is the global heap restricted to its rows. Cut
// walks the plan bottom-up proving which operators preserve (P) — for
// those, the stream a shard produces equals the global stream
// restricted to the rows that shard owns — and then decides how the
// root can be reassembled: an ordered merge on a partition-key column,
// a single designated shard for broadcast-only plans, or a partial
// aggregate combination. Plans that cannot be proven safe are left to
// the coordinator's local replica.
package exchange

import (
	"fmt"
	"strings"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/tpch"
)

// Layout describes how base tables are placed across the cluster:
// tables in PartitionCols are hash-partitioned on the named column;
// every other table is broadcast (fully replicated on every shard).
type Layout struct {
	// TotalShards is the number of worker shards (>= 1).
	TotalShards int
	// PartitionCols maps lower-case table name to the lower-case
	// column the table is hash-partitioned on.
	PartitionCols map[string]string
}

// DefaultTPCH is the layout OpenTPCHShard loads: the three large
// tables partitioned per tpch.PartitionColumns, dimensions broadcast.
func DefaultTPCH(totalShards int) Layout {
	return Layout{TotalShards: totalShards, PartitionCols: tpch.PartitionColumns()}
}

// partitionCol returns the partition column for a table, or "" if the
// table is broadcast under this layout.
func (l Layout) partitionCol(table string) string {
	return l.PartitionCols[strings.ToLower(table)]
}

// ShuffleKind labels how an Exchange moves rows between nodes.
type ShuffleKind int

const (
	// ShuffleMergeGather: ordered k-way merge of per-shard streams on
	// the merge keys, ties impossible across shards because a key
	// column is a partition key.
	ShuffleMergeGather ShuffleKind = iota
	// ShuffleSingleShard: the whole plan reads only broadcast tables;
	// run it on one shard and pass the stream through.
	ShuffleSingleShard
	// ShufflePartialAgg: each shard computes a partial aggregate row;
	// the coordinator combines them into the global row.
	ShufflePartialAgg
	// ShuffleBroadcast marks a fragment input that is fully replicated
	// (used in plan description only; broadcast tables are loaded
	// replicated, never shipped at run time).
	ShuffleBroadcast
	// ShuffleHashPartition marks a fragment input hash-partitioned on
	// a column (again descriptive: partitioning happens at load time).
	ShuffleHashPartition
)

func (k ShuffleKind) String() string {
	switch k {
	case ShuffleMergeGather:
		return "merge-gather"
	case ShuffleSingleShard:
		return "single-shard"
	case ShufflePartialAgg:
		return "partial-agg"
	case ShuffleBroadcast:
		return "broadcast"
	case ShuffleHashPartition:
		return "hash-partition"
	default:
		return fmt.Sprintf("ShuffleKind(%d)", int(k))
	}
}

// Exchange is the distributed root operator: it gathers the streams
// of Shards identical shard-local fragments (Input) back into one
// global stream according to Kind. It implements core.Node so a
// distributed plan can be explained and described like any other.
type Exchange struct {
	Input  core.Node
	Kind   ShuffleKind
	Shards int
	// Keys are the merge keys (output ordinals) for ShuffleMergeGather.
	Keys []MergeKey
}

// Schema implements core.Node: an exchange is transparent.
func (x *Exchange) Schema() *schema.Schema { return x.Input.Schema() }

// Children implements core.Node.
func (x *Exchange) Children() []core.Node { return []core.Node{x.Input} }

// WithChildren implements core.Node.
func (x *Exchange) WithChildren(ch []core.Node) core.Node {
	cp := *x
	cp.Input = ch[0]
	return &cp
}

// Describe implements core.Node.
func (x *Exchange) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Exchange[%s, shards=%d", x.Kind, x.Shards)
	if len(x.Keys) > 0 {
		b.WriteString(", keys=")
		for i, k := range x.Keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "#%d", k.Ord)
			if k.Desc {
				b.WriteString(" desc")
			}
		}
	}
	b.WriteByte(']')
	return b.String()
}

// MergeKey is one merge-sort key of an order-preserving gather,
// addressed by output column ordinal.
type MergeKey struct {
	Ord  int
	Desc bool
}
