package exchange_test

import (
	"strings"
	"sync"
	"testing"

	"gapplydb"
	"gapplydb/internal/exchange"
	"gapplydb/xmlpub"
)

var (
	cutDBOnce sync.Once
	cutDB     *gapplydb.Database
	cutDBErr  error
)

func planDB(t *testing.T) *gapplydb.Database {
	t.Helper()
	cutDBOnce.Do(func() {
		cutDB, cutDBErr = gapplydb.OpenTPCH(0.001)
	})
	if cutDBErr != nil {
		t.Fatal(cutDBErr)
	}
	return cutDB
}

func analyze(t *testing.T, sql string, opts ...gapplydb.QueryOption) exchange.Cut {
	t.Helper()
	plan, _, _, err := planDB(t).PlanTrace(sql, opts...)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return exchange.Analyze(plan, exchange.DefaultTPCH(3))
}

func TestAnalyzeSingleShardForBroadcastOnly(t *testing.T) {
	c := analyze(t, "select n_name from nation order by n_name")
	if c.Strategy != exchange.StrategySingleShard {
		t.Fatalf("broadcast-only plan: %v (%s)", c.Strategy, c.Reason)
	}
}

func TestAnalyzeMergeGatherOnPartitionKey(t *testing.T) {
	c := analyze(t, "select ps_partkey, ps_suppkey from partsupp order by ps_suppkey, ps_partkey")
	if c.Strategy != exchange.StrategyMergeGather {
		t.Fatalf("ordered partitioned scan: %v (%s)", c.Strategy, c.Reason)
	}
	// ps_suppkey is output ordinal 1 and the partition key.
	if len(c.Keys) != 2 || c.Keys[0] != (exchange.MergeKey{Ord: 1}) || c.Keys[1] != (exchange.MergeKey{Ord: 0}) {
		t.Fatalf("merge keys = %+v", c.Keys)
	}
}

// The sorted-outer-union translations of the Figure 8 publishing
// queries are the tentpole workload: ORDER BY the outer key over a
// UNION ALL of join branches rooted at partsupp. They must distribute
// as order-preserving merges.
func TestAnalyzeFigure8SortedOuterUnions(t *testing.T) {
	for _, q := range []struct {
		name string
		sql  string
	}{
		{"Q1", xmlpub.Q1().SortedOuterUnionSQL()},
		{"Q2", xmlpub.Q2().SortedOuterUnionSQL()},
		{"Q3", xmlpub.Q3(0.9, 1.1).SortedOuterUnionSQL()},
	} {
		c := analyze(t, q.sql)
		if c.Strategy != exchange.StrategyMergeGather {
			t.Errorf("%s sorted-outer-union: %v (%s)", q.name, c.Strategy, c.Reason)
		}
	}
}

// With partitioning pinned to sort — what the coordinator pins on every
// shard — the GApply formulations distribute too, merging on the
// grouping prefix the sort partition provides.
func TestAnalyzeGApplySortPartitioned(t *testing.T) {
	c := analyze(t, xmlpub.Q1().GApplySQL(), gapplydb.WithPartition("sort"))
	if !c.HasGApply {
		t.Fatal("GApply plan not flagged")
	}
	if c.Strategy != exchange.StrategyMergeGather {
		t.Fatalf("sort-partitioned gapply: %v (%s)", c.Strategy, c.Reason)
	}
}

func TestAnalyzeHashGApplyStaysLocal(t *testing.T) {
	c := analyze(t, xmlpub.Q1().GApplySQL(), gapplydb.WithPartition("hash"))
	if c.Strategy != exchange.StrategyLocal {
		t.Fatalf("hash-partitioned gapply distributed: %v", c.Strategy)
	}
	if !strings.Contains(c.Reason, "hash") {
		t.Errorf("reason %q does not name the hash partitioning", c.Reason)
	}
}

func TestAnalyzePartialAgg(t *testing.T) {
	c := analyze(t, "select count(*), min(l_quantity), max(l_quantity), sum(l_orderkey) from lineitem")
	if c.Strategy != exchange.StrategyPartialAgg {
		t.Fatalf("combinable aggregates: %v (%s)", c.Strategy, c.Reason)
	}
	want := []exchange.CombineFn{exchange.CombineCount, exchange.CombineMin, exchange.CombineMax, exchange.CombineSum}
	if len(c.Combines) != len(want) {
		t.Fatalf("combines = %v", c.Combines)
	}
	for i := range want {
		if c.Combines[i] != want[i] {
			t.Errorf("combine %d = %v, want %v", i, c.Combines[i], want[i])
		}
	}
}

func TestAnalyzeAvgStaysLocal(t *testing.T) {
	c := analyze(t, "select avg(l_quantity) from lineitem")
	if c.Strategy != exchange.StrategyLocal {
		t.Fatalf("avg distributed: %v", c.Strategy)
	}
}

func TestAnalyzeNonCoPartitionedJoinStaysLocal(t *testing.T) {
	// partsupp is partitioned on ps_suppkey, lineitem on l_orderkey:
	// joining them on partkey scatters matches across shards.
	c := analyze(t, `select ps_suppkey, l_orderkey from partsupp, lineitem
		where ps_partkey = l_partkey order by ps_suppkey`)
	if c.Strategy != exchange.StrategyLocal {
		t.Fatalf("non-co-partitioned join distributed: %v", c.Strategy)
	}
}

func TestAnalyzeUnorderedPartitionedStaysLocal(t *testing.T) {
	c := analyze(t, "select ps_partkey from partsupp")
	if c.Strategy != exchange.StrategyLocal {
		t.Fatalf("unordered partitioned scan distributed: %v", c.Strategy)
	}
}
