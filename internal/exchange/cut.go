package exchange

import (
	"fmt"
	"strings"

	"gapplydb/internal/core"
	"gapplydb/internal/schema"
	"gapplydb/internal/types"
)

// Strategy is how (whether) a plan's root can be executed across shards
// and reassembled into the exact single-node stream.
type Strategy int

const (
	// StrategyLocal: the plan could not be proven distributable; the
	// coordinator must run it on its local full replica.
	StrategyLocal Strategy = iota
	// StrategySingleShard: the plan reads only broadcast tables, so any
	// one shard produces the exact global stream.
	StrategySingleShard
	// StrategyMergeGather: every shard runs the fragment over its rows;
	// the coordinator k-way merges the streams on Cut.Keys.
	StrategyMergeGather
	// StrategyPartialAgg: the root is a global aggregate; each shard
	// computes a partial row and the coordinator combines per Cut.Combines.
	StrategyPartialAgg
)

func (s Strategy) String() string {
	switch s {
	case StrategySingleShard:
		return "single-shard"
	case StrategyMergeGather:
		return "merge-gather"
	case StrategyPartialAgg:
		return "partial-agg"
	default:
		return "local"
	}
}

// CombineFn is how the coordinator folds one output column of per-shard
// partial aggregate rows into the global value.
type CombineFn int

const (
	// CombineCount sums per-shard counts (never NULL).
	CombineCount CombineFn = iota
	// CombineSum sums non-NULL integer partials; all-NULL stays NULL.
	// Integer addition is associative (even on wraparound), so the
	// shard split cannot change the result; float sums are rejected.
	CombineSum
	// CombineMin / CombineMax keep the extreme non-NULL partial.
	CombineMin
	CombineMax
)

// Cut is the outcome of analyzing one plan against a Layout.
type Cut struct {
	Strategy Strategy
	// Keys are the merge keys (root output ordinals) for MergeGather.
	Keys []MergeKey
	// Combines has one entry per output column for PartialAgg.
	Combines []CombineFn
	// Reason says why the plan fell back to StrategyLocal.
	Reason string
	// HasGApply reports GApply nodes in the plan; for any distributed
	// strategy the coordinator must then pin partition=sort on the
	// shards so every fragment compiles to the congruent plan (Analyze
	// only distributes plans whose GApplys are all sort-partitioned).
	HasGApply bool
}

// Distributed reports whether the plan runs on the shards at all.
func (c Cut) Distributed() bool { return c.Strategy != StrategyLocal }

// Analyze decides how a plan can run over the layout's shards while
// reproducing the single-node stream byte for byte.
//
// The proof obligation per operator is the restriction property (P):
// "the stream this subtree produces on shard s equals the global stream
// restricted to the rows shard s owns". Partitioned scans satisfy (P)
// by construction (the shard loader draws the identical deterministic
// row stream and keeps its own rows, so the shard heap is the global
// heap restricted). Each case below states why the operator preserves
// (P); anything unproven falls back to StrategyLocal.
//
// At the root, (P)-streams are reassembled three ways:
//   - ordered merge, when the plan provides an ordering whose keys
//     resolve to output columns and at least one is a partition key —
//     rows equal on a partition key live on one shard, so cross-shard
//     ties are impossible and a merge that keeps per-source order
//     reproduces the global stream exactly;
//   - pass-through of one shard, when every base table is broadcast;
//   - partial-aggregate combination, when the root is a global AggOp
//     whose aggregates are combinable.
func Analyze(plan core.Node, layout Layout) Cut {
	a := &analyzer{layout: layout}
	cut := Cut{HasGApply: hasGApply(plan)}

	in := a.visit(plan)
	switch in.d {
	case broadcast:
		cut.Strategy = StrategySingleShard
		return cut

	case partitioned:
		ordering := core.ProvidedOrdering(plan)
		if len(ordering) == 0 {
			cut.Reason = "root provides no ordering to merge on"
			return cut
		}
		sch := plan.Schema()
		keys := make([]MergeKey, len(ordering))
		anchored := false
		for i, oc := range ordering {
			ord, err := sch.Resolve(oc.Table, oc.Name)
			if err != nil {
				cut.Reason = fmt.Sprintf("ordering column %s.%s not in output", oc.Table, oc.Name)
				return cut
			}
			keys[i] = MergeKey{Ord: ord, Desc: oc.Desc}
			if in.keys[ord] {
				anchored = true
			}
		}
		if !anchored {
			cut.Reason = "no merge key is a partition key; cross-shard ties possible"
			return cut
		}
		cut.Strategy = StrategyMergeGather
		cut.Keys = keys
		return cut
	}

	// Not distributable as a whole; a root global aggregate may still
	// be split into combinable partials. The planner leaves aggregate
	// roots as a renaming Project over the AggOp, so peel that first.
	if agg, colMap, ok := rootAgg(plan); ok {
		ai := a2partial(layout, agg, colMap)
		if ai.ok {
			cut.Strategy = StrategyPartialAgg
			cut.Combines = ai.combines
			return cut
		}
		if ai.reason != "" {
			cut.Reason = ai.reason
			return cut
		}
	}
	cut.Reason = a.reason
	if cut.Reason == "" {
		cut.Reason = "plan not distributable"
	}
	return cut
}

// rootAgg recognizes a global-aggregate root: either a bare AggOp or a
// column-selection Project over one (how the planner renames __aggN
// columns). colMap maps each root output ordinal to its AggOp ordinal.
func rootAgg(plan core.Node) (*core.AggOp, []int, bool) {
	if agg, ok := plan.(*core.AggOp); ok {
		m := make([]int, len(agg.Aggs))
		for i := range m {
			m[i] = i
		}
		return agg, m, true
	}
	p, ok := plan.(*core.Project)
	if !ok {
		return nil, nil, false
	}
	agg, ok := p.Input.(*core.AggOp)
	if !ok {
		return nil, nil, false
	}
	asch := agg.Schema()
	m := make([]int, len(p.Exprs))
	for i, e := range p.Exprs {
		c, ok := e.(*core.ColRef)
		if !ok {
			return nil, nil, false
		}
		ord, err := asch.Resolve(c.Table, c.Name)
		if err != nil {
			return nil, nil, false
		}
		m[i] = ord
	}
	return agg, m, true
}

type partialInfo struct {
	ok       bool
	combines []CombineFn
	reason   string
}

// a2partial checks a root AggOp for the partial-aggregate strategy: the
// input must satisfy (P) and every aggregate must be combinable. colMap
// maps root output ordinals to AggOp ordinals (the root may re-project).
func a2partial(layout Layout, agg *core.AggOp, colMap []int) partialInfo {
	a := &analyzer{layout: layout}
	in := a.visit(agg.Input)
	if in.d != partitioned {
		return partialInfo{}
	}
	isch := agg.Input.Schema()
	combines := make([]CombineFn, len(colMap))
	for i, ord := range colMap {
		s := agg.Aggs[ord]
		fn, ok := combineOf(s, isch)
		if !ok {
			return partialInfo{reason: fmt.Sprintf("aggregate %s is not combinable", s.OutName())}
		}
		combines[i] = fn
	}
	return partialInfo{ok: true, combines: combines}
}

// combineOf maps an aggregate spec to its partial-combination function.
// DISTINCT aggregates need global duplicate elimination; AVG needs a
// sum/count split the wire does not carry; float SUM addition is not
// associative. All three stay local.
func combineOf(s core.AggSpec, in *schema.Schema) (CombineFn, bool) {
	if s.Distinct {
		return 0, false
	}
	switch strings.ToLower(s.Fn) {
	case "count":
		return CombineCount, true
	case "min":
		return CombineMin, true
	case "max":
		return CombineMax, true
	case "sum":
		if s.OutType(in) == types.KindInt {
			return CombineSum, true
		}
	}
	return 0, false
}

// ------------------------------------------------------------ analysis

// dist classifies a subtree's relationship to the shard layout.
type dist int

const (
	// notDist: the subtree could not be proven to satisfy (P).
	notDist dist = iota
	// broadcast: the subtree reads only replicated tables, so every
	// shard produces the identical global stream.
	broadcast
	// partitioned: the subtree satisfies (P).
	partitioned
)

// info carries the classification up the tree. keys is the set of
// output ordinals c such that the shard owning any emitted row is
// ShardOf(row[c]) — i.e. columns that still carry the partition key.
type info struct {
	d    dist
	keys map[int]bool
}

type analyzer struct {
	layout Layout
	reason string // first failure, for Cut.Reason
}

func (a *analyzer) fail(format string, args ...any) info {
	if a.reason == "" {
		a.reason = fmt.Sprintf(format, args...)
	}
	return info{d: notDist}
}

func (a *analyzer) visit(n core.Node) info {
	switch x := n.(type) {
	case *core.Scan:
		return a.scanInfo(x.Table, x.Schema())

	case *core.IndexScan:
		// An ordered index scan preserves (P): the index orders rows by
		// key then heap position (stable), and a stable sort of the
		// restricted heap is the restriction of the stably sorted
		// global heap. Range bounds are a row-wise filter on top.
		return a.scanInfo(x.Table, x.Schema())

	case *core.Select:
		// A row-wise filter of a restriction is the restriction of the
		// filter (and filtering identical replicas stays identical).
		return a.visit(x.Input)

	case *core.Project:
		in := a.visit(x.Input)
		if in.d == notDist {
			return in
		}
		// Row-wise map preserves (P); partition-key knowledge survives
		// only through plain column references.
		out := info{d: in.d, keys: map[int]bool{}}
		isch := x.Input.Schema()
		for i, e := range x.Exprs {
			c, ok := e.(*core.ColRef)
			if !ok {
				continue
			}
			if ord, err := isch.Resolve(c.Table, c.Name); err == nil && in.keys[ord] {
				out.keys[i] = true
			}
		}
		return out

	case *core.Distinct:
		in := a.visit(x.Input)
		switch {
		case in.d == broadcast:
			return in
		case in.d == partitioned && len(in.keys) > 0:
			// Duplicate rows agree on every column, in particular on a
			// partition-key column, so each duplicate set lives on one
			// shard: per-shard dedup in first-appearance order is the
			// restriction of global dedup.
			return in
		case in.d == partitioned:
			return a.fail("distinct over partitioned input without a partition-key column")
		}
		return in

	case *core.OrderBy:
		// Stable sort of a restriction = restriction of the stable sort.
		in := a.visit(x.Input)
		return in

	case *core.Join:
		return a.joinInfo(x)

	case *core.GroupBy:
		return a.groupByInfo(x)

	case *core.AggOp:
		in := a.visit(x.Input)
		if in.d == broadcast {
			return info{d: broadcast}
		}
		// A global aggregate collapses a partitioned input to one row
		// per shard; only the root PartialAgg strategy can fix that up.
		return a.fail("global aggregate over partitioned input")

	case *core.GApply:
		return a.gapplyInfo(x)

	case *core.UnionAll:
		return a.unionInfo(x)

	case *core.Apply:
		// The inner side runs once per outer row against replicated
		// data only, so its result depends on the outer row alone and
		// is identical on whichever shard evaluates it.
		if t := firstPartitionedTable(x.Inner, a.layout); t != "" {
			return a.fail("apply inner side reads partitioned table %s", t)
		}
		in := a.visit(x.Outer)
		if in.d == notDist {
			return in
		}
		return info{d: in.d, keys: in.keys}

	case *core.Exists:
		in := a.visit(x.Input)
		if in.d == broadcast {
			return info{d: broadcast}
		}
		return a.fail("exists over partitioned input")

	default:
		return a.fail("operator %T not analyzable for distribution", n)
	}
}

// scanInfo classifies a base-table scan under the layout.
func (a *analyzer) scanInfo(table string, sch *schema.Schema) info {
	col := a.layout.partitionCol(table)
	if col == "" {
		return info{d: broadcast}
	}
	ord, err := sch.Resolve("", col)
	if err != nil {
		return a.fail("partition column %s.%s: %v", table, col, err)
	}
	return info{d: partitioned, keys: map[int]bool{ord: true}}
}

func (a *analyzer) joinInfo(j *core.Join) info {
	li, ri := a.visit(j.Left), a.visit(j.Right)
	if li.d == notDist || ri.d == notDist {
		return info{d: notDist}
	}
	lw := j.Left.Schema().Len()

	switch {
	case li.d == broadcast && ri.d == broadcast:
		return info{d: broadcast}

	case li.d == partitioned && ri.d == broadcast:
		// Every potential match of a shard's outer row is replicated
		// locally, so the shard emits exactly the global pairs whose
		// left row it owns, in (left, right) order: (P) holds. A left
		// outer join is safe for the same reason — "no match locally"
		// means "no match globally".
		return info{d: partitioned, keys: li.keys}

	case li.d == broadcast && ri.d == partitioned:
		if j.Kind == core.LeftOuterJoin {
			// A left row whose matches live on another shard would be
			// NULL-padded here and matched there.
			return a.fail("left outer join with partitioned right input")
		}
		out := info{d: partitioned, keys: map[int]bool{}}
		for ord := range ri.keys {
			out.keys[lw+ord] = true
		}
		return out

	default: // both partitioned: need co-partitioning on an equi pair
		ls, rs := j.Left.Schema(), j.Right.Schema()
		for _, p := range j.EquiPairs() {
			lo, lerr := ls.Resolve(p.Left.Table, p.Left.Name)
			ro, rerr := rs.Resolve(p.Right.Table, p.Right.Name)
			if lerr == nil && rerr == nil && li.keys[lo] && ri.keys[ro] {
				// Matching rows agree on the equi columns, which are
				// partition keys on both sides, so every global join
				// pair is co-located on exactly one shard. This also
				// covers left outer: all matches of a left row share
				// its shard, so local no-match is global no-match.
				out := info{d: partitioned, keys: map[int]bool{}}
				for o := range li.keys {
					out.keys[o] = true
				}
				for o := range ri.keys {
					out.keys[lw+o] = true
				}
				return out
			}
		}
		return a.fail("join of two partitioned inputs without a co-partitioning equi-join key")
	}
}

func (a *analyzer) groupByInfo(g *core.GroupBy) info {
	in := a.visit(g.Input)
	if in.d != partitioned {
		return in // broadcast grouping is identical everywhere; notDist propagates
	}
	isch := g.Input.Schema()
	out := info{d: partitioned, keys: map[int]bool{}}
	for i, c := range g.GroupCols {
		if ord, err := isch.Resolve(c.Table, c.Name); err == nil && in.keys[ord] {
			out.keys[i] = true
		}
	}
	if len(out.keys) == 0 {
		// A group split across shards would emit one partial row per
		// shard; grouping must follow the partitioning.
		return a.fail("group by without a partition-key grouping column")
	}
	// Groups are whole on their shard, so per-shard aggregates are the
	// global values and first-appearance group order is the restriction
	// of the global first-appearance order.
	return out
}

func (a *analyzer) gapplyInfo(g *core.GApply) info {
	if g.Partition != core.PartitionSort {
		// Only sort partitioning both preserves (P) with a provable
		// root ordering and can be pinned congruently on every shard.
		return a.fail("gapply is %s-partitioned; only sort partitioning is distributable", g.Partition)
	}
	if t := firstPartitionedTable(g.Inner, a.layout); t != "" {
		return a.fail("gapply inner query reads partitioned table %s", t)
	}
	in := a.visit(g.Outer)
	if in.d == broadcast {
		return info{d: broadcast}
	}
	if in.d != partitioned {
		return in
	}
	osch := g.Outer.Schema()
	out := info{d: partitioned, keys: map[int]bool{}}
	for i, c := range g.GroupCols {
		if ord, err := osch.Resolve(c.Table, c.Name); err == nil && in.keys[ord] {
			out.keys[i] = true
		}
	}
	if len(out.keys) == 0 {
		return a.fail("gapply groups are not aligned with the partitioning")
	}
	// Sort partitioning emits groups in key order (stable in the outer
	// stream), groups are whole per shard, and the per-group inner query
	// sees only the group plus replicated tables: the shard stream is
	// the restriction of the global stream.
	return out
}

func (a *analyzer) unionInfo(u *core.UnionAll) info {
	// UNION ALL concatenates branch streams, and concatenation of
	// restrictions is the restriction of the concatenation — but only
	// if every branch is partitioned (a broadcast branch would be
	// emitted once per shard instead of once globally).
	infos := make([]info, len(u.Inputs))
	nPart := 0
	for i, in := range u.Inputs {
		infos[i] = a.visit(in)
		switch infos[i].d {
		case notDist:
			return infos[i]
		case partitioned:
			nPart++
		}
	}
	switch nPart {
	case 0:
		return info{d: broadcast}
	case len(u.Inputs):
		keys := map[int]bool{}
		for o := range infos[0].keys {
			keys[o] = true
		}
		for _, ci := range infos[1:] {
			for o := range keys {
				if !ci.keys[o] {
					delete(keys, o)
				}
			}
		}
		return info{d: partitioned, keys: keys}
	default:
		return a.fail("union all mixes partitioned and broadcast branches")
	}
}

// firstPartitionedTable scans a subtree for any base-table access to a
// partitioned table, returning its name ("" if none). Used for inner
// sides that must be shard-independent.
func firstPartitionedTable(n core.Node, l Layout) string {
	switch x := n.(type) {
	case *core.Scan:
		if l.partitionCol(x.Table) != "" {
			return x.Table
		}
	case *core.IndexScan:
		if l.partitionCol(x.Table) != "" {
			return x.Table
		}
	}
	for _, c := range n.Children() {
		if t := firstPartitionedTable(c, l); t != "" {
			return t
		}
	}
	return ""
}

// hasGApply reports any GApply anywhere in the tree (including inner
// sides, which Children covers).
func hasGApply(n core.Node) bool {
	if _, ok := n.(*core.GApply); ok {
		return true
	}
	for _, c := range n.Children() {
		if hasGApply(c) {
			return true
		}
	}
	return false
}
