package gapplydb_test

import (
	"context"
	"fmt"
	"testing"

	"gapplydb"
	"gapplydb/experiments"
	"gapplydb/replay"
)

// The engine differential pins the batch engine to its oracle: the
// row-at-a-time engine (selected via WithRowExecution) and the default
// vectorized engine must produce byte-identical ordered output for the
// whole evaluation workload and the whole replay corpus, at serial and
// parallel degrees, with the same group/spool accounting and the same
// failure taxonomy. Any batch-engine bug that changes results, order,
// NULL handling, budget enforcement or spool reuse shows up here.

func TestEngineDifferentialSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("differential battery skipped in -short mode")
	}
	db := integDatabase(t)
	for _, sq := range experiments.SuiteQueries() {
		sq := sq
		t.Run(sq.Name, func(t *testing.T) {
			for _, dop := range []int{1, 2, 8} {
				row, err := db.Query(sq.SQL, gapplydb.WithDOP(dop), gapplydb.WithRowExecution())
				if err != nil {
					t.Fatalf("row engine dop %d: %v\n%s", dop, err, sq.SQL)
				}
				batch, err := db.Query(sq.SQL, gapplydb.WithDOP(dop))
				if err != nil {
					t.Fatalf("batch engine dop %d: %v\n%s", dop, err, sq.SQL)
				}
				if d := firstDiff(ordered(row), ordered(batch)); d != "" {
					t.Fatalf("dop %d: engines diverged: %s", dop, d)
				}
				// Work accounting the engines share by contract. (Counters fed
				// by speculative batch pulls — RowsScanned under EXISTS, join
				// probes inside a short-circuited subtree — may legitimately
				// run ahead by part of one batch and are not compared.)
				type parity struct {
					groups, inner, serial, parallel, builds, hits int64
				}
				rp := parity{row.Stats.Groups, row.Stats.InnerExecs, row.Stats.SerialGroupExecs,
					row.Stats.ParallelGroupExecs, row.Stats.SpoolBuilds, row.Stats.SpoolHits}
				bp := parity{batch.Stats.Groups, batch.Stats.InnerExecs, batch.Stats.SerialGroupExecs,
					batch.Stats.ParallelGroupExecs, batch.Stats.SpoolBuilds, batch.Stats.SpoolHits}
				if rp != bp {
					t.Fatalf("dop %d: counter parity broken:\nrow:   %+v\nbatch: %+v", dop, rp, bp)
				}
			}
		})
	}
}

func TestEngineDifferentialCorpus(t *testing.T) {
	c, err := replay.Load("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	db := integDatabase(t)
	ctx := context.Background()

	for _, q := range c.Queries {
		q := q
		if q.CancelAfterRows > 0 {
			continue // wire-level cancel has no embedded execution
		}
		for _, dop := range []int{1, 2, 8} {
			dop := dop
			if q.DOP > 0 && dop != 1 {
				continue // degree-pinned queries run once
			}
			t.Run(fmt.Sprintf("%s/dop%d", q.Name, dop), func(t *testing.T) {
				row, err := replay.RunLocalOpts(ctx, db, q, dop, gapplydb.WithRowExecution())
				if err != nil {
					t.Fatalf("row engine: %v", err)
				}
				batch, err := replay.RunLocalOpts(ctx, db, q, dop)
				if err != nil {
					t.Fatalf("batch engine: %v", err)
				}
				if row.Code != batch.Code {
					t.Fatalf("divergent outcome: row %q (%v) vs batch %q (%v)",
						row.Code, row.Err, batch.Code, batch.Err)
				}
				if q.Expect.Error != "" {
					if batch.Code != q.Expect.Error {
						t.Fatalf("code = %q, want %q", batch.Code, q.Expect.Error)
					}
					return
				}
				if err := replay.DiffRendered(batch.Rendered, row.Rendered); err != nil {
					t.Fatalf("batch vs row: %v", err)
				}
				if q.Expect.Golden {
					want, err := c.Golden(q)
					if err != nil {
						t.Fatal(err)
					}
					if err := replay.DiffRendered(row.Rendered, want); err != nil {
						t.Fatalf("row engine vs golden: %v", err)
					}
				}
			})
		}
	}
}
