package gapplydb_test

import (
	"regexp"
	"strings"
	"testing"

	"gapplydb"
	"gapplydb/experiments"
	"gapplydb/xmlpub"
)

// TestInstrumentationNeutral is the observability layer's no-Heisenberg
// guarantee: turning on per-operator profiling must not change any
// observable output — rows (byte-identical, order included), executor
// statistics, or the published XML — at serial and parallel degrees.
// Run under -race this also exercises the profile's parallel merge path
// on the full evaluation workload.
func TestInstrumentationNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("differential battery skipped in -short mode")
	}
	db := integDatabase(t)
	for _, sq := range experiments.SuiteQueries() {
		sq := sq
		t.Run(sq.Name, func(t *testing.T) {
			for _, dop := range []int{1, 8} {
				plain, err := db.Query(sq.SQL, gapplydb.WithDOP(dop))
				if err != nil {
					t.Fatalf("dop %d: %v", dop, err)
				}
				inst, err := db.Query(sq.SQL, gapplydb.WithDOP(dop), gapplydb.WithInstrumentation())
				if err != nil {
					t.Fatalf("dop %d instrumented: %v", dop, err)
				}
				if d := firstDiff(ordered(plain), ordered(inst)); d != "" {
					t.Fatalf("dop %d: instrumentation changed the rows: %s", dop, d)
				}
				// The second run of the same statement text is a plan-cache
				// hit; that is a property of repetition, not instrumentation,
				// so compare the executor stats with the field normalized.
				ps, is := plain.Stats, inst.Stats
				ps.PlanCacheHits, is.PlanCacheHits = 0, 0
				if ps != is {
					t.Fatalf("dop %d: instrumentation changed the stats:\nplain: %+v\ninst:  %+v",
						dop, ps, is)
				}
			}
		})
	}
}

// TestInstrumentationNeutralXML extends the neutrality check to the end
// product: the published document is byte-identical with profiling on.
func TestInstrumentationNeutralXML(t *testing.T) {
	db := integDatabase(t)
	var want string
	for _, instrument := range []bool{false, true} {
		opts := []gapplydb.QueryOption{gapplydb.WithDOP(8)}
		if instrument {
			opts = append(opts, gapplydb.WithInstrumentation())
		}
		var buf stringsBuilder
		if _, err := xmlpub.Publish(db, xmlpub.Q1(), xmlpub.GApply, &buf, opts...); err != nil {
			t.Fatal(err)
		}
		doc := buf.String()
		if !instrument {
			want = doc
			continue
		}
		if doc != want {
			t.Fatal("instrumentation changed the published XML document")
		}
	}
	if want == "" {
		t.Fatal("empty document")
	}
}

// stripTimings removes the wall-clock annotations from an EXPLAIN
// ANALYZE report, leaving only its deterministic content.
func stripTimings(s string) string {
	s = regexp.MustCompile(` time=[^)]*\)`).ReplaceAllString(s, ")")
	s = regexp.MustCompile(`execution time: \S+`).ReplaceAllString(s, "execution time: X")
	return s
}

// TestExplainAnalyzeDOPInvariant pins the cross-degree contract: the
// EXPLAIN ANALYZE report — actual per-operator row and loop counts
// included — is identical at dop 1 and dop 8 except for wall times,
// because the parallel execution phase merges worker profiles node-by-
// node in partition order.
func TestExplainAnalyzeDOPInvariant(t *testing.T) {
	db := integDatabase(t)
	queries := []struct{ name, suite string }{
		{"Q1", "figure8/Q1/with"},
		{"Q4", "figure8/Q4/with"},
	}
	for _, q := range queries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			sql := figure8Query(t, q.suite)
			serial, err := db.ExplainAnalyze(sql, gapplydb.WithDOP(1))
			if err != nil {
				t.Fatal(err)
			}
			par, err := db.ExplainAnalyze(sql, gapplydb.WithDOP(8))
			if err != nil {
				t.Fatal(err)
			}
			a, b := stripTimings(serial.String()), stripTimings(par.String())
			if a != b {
				t.Errorf("EXPLAIN ANALYZE content differs across dop:\n--- dop 1 ---\n%s--- dop 8 ---\n%s", a, b)
			}
			if !strings.Contains(serial.Plan, "actual rows=") {
				t.Errorf("analyze annotations missing:\n%s", serial.Plan)
			}
		})
	}
}

// TestExplainStatementRouting checks Query's EXPLAIN [ANALYZE] prefix
// handling end to end: a single QUERY PLAN column, the report as rows,
// and the rule trace exposed on the Result.
func TestExplainStatementRouting(t *testing.T) {
	db := integDatabase(t)
	sql := figure8Query(t, "figure8/Q1/with")

	res, err := db.Query("explain " + sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "QUERY PLAN" {
		t.Fatalf("columns = %v", res.Columns)
	}
	text := res.String()
	for _, want := range []string{"GApply", "plan hash:", "optimizer trace:"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN result missing %q:\n%s", want, text)
		}
	}
	if len(res.Trace) == 0 {
		t.Error("EXPLAIN result has no rule trace")
	}
	if strings.Contains(text, "actual rows=") {
		t.Error("plain EXPLAIN must not execute the query")
	}

	res, err = db.Query("explain analyze " + sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "actual rows=") {
		t.Errorf("EXPLAIN ANALYZE result lacks actuals:\n%s", res.String())
	}
	if res.Stats.Groups == 0 {
		t.Errorf("EXPLAIN ANALYZE must surface execution stats, got %+v", res.Stats)
	}
}

// TestMetricsAccumulate checks the Database-level registry: counters
// fold in each execution's work and the latency histograms record one
// observation per phase.
func TestMetricsAccumulate(t *testing.T) {
	db, err := gapplydb.OpenTPCH(0.001)
	if err != nil {
		t.Fatal(err)
	}
	sql := figure8Query(t, "figure8/Q1/with")
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Counters["queries"] != 1 {
		t.Errorf("queries = %d, want 1", m.Counters["queries"])
	}
	if m.Counters["groups_formed"] != res.Stats.Groups {
		t.Errorf("groups_formed = %d, want %d", m.Counters["groups_formed"], res.Stats.Groups)
	}
	split := m.Counters["serial_group_execs"] + m.Counters["parallel_group_execs"]
	if split != res.Stats.Groups {
		t.Errorf("group-exec split %d, want %d", split, res.Stats.Groups)
	}
	if m.Histograms["execute_latency"].Count != 1 || m.Histograms["optimize_latency"].Count != 1 {
		t.Errorf("latency histograms = %+v", m.Histograms)
	}
	if _, err := db.Query("select broken from"); err == nil {
		t.Fatal("expected parse error")
	}
	if got := db.Metrics().Counters["query_errors"]; got != 1 {
		t.Errorf("query_errors = %d, want 1", got)
	}
	db.PublishMetrics("gapplydb_test_metrics")
	db.PublishMetrics("gapplydb_test_metrics") // idempotent
}
