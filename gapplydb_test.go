package gapplydb

import (
	"strings"
	"testing"
)

// fixture builds the canonical tiny data set through the public API.
func fixture(t *testing.T) *Database {
	t.Helper()
	db := Open()
	if err := db.CreateTable("supplier",
		[]Column{{"s_suppkey", "int"}, {"s_name", "string"}},
		[]string{"s_suppkey"}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("part",
		[]Column{{"p_partkey", "int"}, {"p_name", "string"}, {"p_retailprice", "float"}, {"p_brand", "string"}},
		[]string{"p_partkey"}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("partsupp",
		[]Column{{"ps_partkey", "int"}, {"ps_suppkey", "int"}},
		[]string{"ps_partkey", "ps_suppkey"},
		ForeignKey{[]string{"ps_partkey"}, "part", []string{"p_partkey"}},
		ForeignKey{[]string{"ps_suppkey"}, "supplier", []string{"s_suppkey"}}); err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Insert("supplier", []any{1, "alpha"}, []any{2, "beta"}, []any{3, "gamma"}))
	must(db.Insert("part",
		[]any{1, "bolt", 10.0, "Brand#A"},
		[]any{2, "nut", 20.0, "Brand#B"},
		[]any{3, "washer", 30.0, "Brand#A"},
		[]any{4, "screw", 40.0, "Brand#B"}))
	must(db.Insert("partsupp",
		[]any{1, 1}, []any{2, 1}, []any{3, 1}, []any{3, 2}, []any{4, 2}))
	db.RefreshStats()
	return db
}

func TestOpenAndTables(t *testing.T) {
	db := fixture(t)
	tables := db.Tables()
	if len(tables) != 3 || tables[0] != "part" {
		t.Errorf("tables = %v", tables)
	}
}

func TestCreateTableErrors(t *testing.T) {
	db := Open()
	if err := db.CreateTable("t", []Column{{"a", "nosuch"}}, nil); err == nil {
		t.Error("bad column type must fail")
	}
	if err := db.CreateTable("t", []Column{{"a", "int"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t", []Column{{"a", "int"}}, nil); err == nil {
		t.Error("duplicate table must fail")
	}
	if err := db.Insert("t", []any{struct{}{}}); err == nil {
		t.Error("unsupported Go type must fail")
	}
	if err := db.Insert("nosuch", []any{1}); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestSimpleQuery(t *testing.T) {
	db := fixture(t)
	res, err := db.Query("select p_name, p_retailprice from part where p_retailprice > 15 order by p_retailprice")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "nut" || res.Rows[0][1] != 20.0 {
		t.Errorf("first row = %v", res.Rows[0])
	}
	if res.Columns[0] != "part.p_name" {
		t.Errorf("columns = %v", res.Columns)
	}
	if !strings.Contains(res.String(), "washer") {
		t.Error("String() rendering")
	}
}

func TestGApplyQueryThroughAPI(t *testing.T) {
	db := fixture(t)
	res, err := db.Query(`
		select gapply(select count(*), null from g
			where p_retailprice >= (select avg(p_retailprice) from g)
			union all
			select null, count(*) from g
			where p_retailprice < (select avg(p_retailprice) from g)
		) as (above, below)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Stats.Groups != 2 || res.Stats.InnerExecs != 2 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
}

func TestNullResultsConvert(t *testing.T) {
	db := fixture(t)
	res, err := db.Query("select null, p_name from part where p_partkey = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != nil {
		t.Errorf("NULL must convert to nil, got %v", res.Rows[0][0])
	}
}

func TestExplain(t *testing.T) {
	db := fixture(t)
	q := `select gapply(select count(*) from g) as (n)
		from part group by p_brand : g`
	// The optimizer converts this pure-aggregate GApply to a groupby.
	out, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "GroupBy") || !strings.Contains(out, "estimated cost") {
		t.Errorf("explain output:\n%s", out)
	}
	// With the conversion disabled, the GApply operator shows.
	out, err = db.Explain(q, WithoutRule("gapply-to-groupby"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "GApply") {
		t.Errorf("explain output:\n%s", out)
	}
}

func TestQueryOptionsChangeThePlan(t *testing.T) {
	db := fixture(t)
	q := `select gapply(select avg(p_retailprice) from g) as (ap)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`
	optimized, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := db.Explain(q, WithoutOptimizer())
	if err != nil {
		t.Fatal(err)
	}
	if optimized == raw {
		t.Error("WithoutOptimizer must change the plan")
	}
	noPrune, err := db.Explain(q, WithoutRule("projection-before-gapply"), WithoutRule("gapply-to-groupby"))
	if err != nil {
		t.Fatal(err)
	}
	if noPrune == optimized {
		t.Error("WithoutRule must change the plan")
	}
	sorted, err := db.Explain(q, WithPartition("sort"), WithoutRule("gapply-to-groupby"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sorted, "partition=sort") {
		t.Errorf("partition override missing:\n%s", sorted)
	}
	// Results identical across all options.
	base, _ := db.Query(q)
	for _, opts := range [][]QueryOption{
		{WithoutOptimizer()},
		{WithoutRule("projection-before-gapply")},
		{WithPartition("sort")},
		{WithPartition("hash")},
	} {
		res, err := db.Query(q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(base.Rows) {
			t.Errorf("option set %v changed row count", opts)
		}
	}
}

func TestForceRuleThroughAPI(t *testing.T) {
	db := fixture(t)
	q := `select gapply(select * from g where exists
			(select p_partkey from g where p_retailprice > 35))
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`
	forced, err := db.Explain(q, ForceRule("group-selection-exists"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(forced, "GApply") {
		t.Errorf("forced rule kept GApply:\n%s", forced)
	}
	res, err := db.Query(q, ForceRule("group-selection-exists"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOpenTPCH(t *testing.T) {
	db, err := OpenTPCH(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Tables()) != 8 {
		t.Errorf("tables = %v", db.Tables())
	}
	res, err := db.Query("select count(*) from supplier")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 10 {
		t.Errorf("suppliers = %v", res.Rows[0][0])
	}
}

func TestRuleNamesMatchOptimizer(t *testing.T) {
	db := fixture(t)
	q := `select gapply(select count(*) from g) as (n) from part group by p_brand : g`
	for _, name := range RuleNames() {
		if _, err := db.Query(q, WithoutRule(name)); err != nil {
			t.Errorf("rule %q: %v", name, err)
		}
	}
}

func TestParseErrorsSurface(t *testing.T) {
	db := fixture(t)
	if _, err := db.Query("select from where"); err == nil {
		t.Error("parse error must surface")
	}
	if _, err := db.Query("select nosuch from part"); err == nil {
		t.Error("bind error must surface")
	}
	if _, err := db.Explain("select nosuch from part"); err == nil {
		t.Error("explain must surface bind errors")
	}
}
