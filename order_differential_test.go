package gapplydb_test

import (
	"context"
	"fmt"
	"testing"

	"gapplydb"
	"gapplydb/experiments"
	"gapplydb/replay"
)

// The order differential pins the ordered-index machinery to its
// baseline: every plan the order pass touches — index scans replacing
// heap scans, elided sorts, merge joins, ordered GApply partitioning —
// must produce byte-identical ordered output to the same statement
// planned with WithoutIndexes, on both engines, at serial and parallel
// degrees. Indexes are an access-path choice, never a semantics choice;
// any divergence here is an order-pass bug.

func TestOrderDifferentialSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("differential battery skipped in -short mode")
	}
	db := integDatabase(t)
	for _, sq := range experiments.SuiteQueries() {
		sq := sq
		t.Run(sq.Name, func(t *testing.T) {
			for _, dop := range []int{1, 2, 8} {
				base, err := db.Query(sq.SQL, gapplydb.WithDOP(dop), gapplydb.WithoutIndexes())
				if err != nil {
					t.Fatalf("no-index dop %d: %v\n%s", dop, err, sq.SQL)
				}
				want := ordered(base)
				for _, eng := range []struct {
					name  string
					extra []gapplydb.QueryOption
				}{
					{"batch", nil},
					{"row", []gapplydb.QueryOption{gapplydb.WithRowExecution()}},
				} {
					opts := append([]gapplydb.QueryOption{gapplydb.WithDOP(dop)}, eng.extra...)
					res, err := db.Query(sq.SQL, opts...)
					if err != nil {
						t.Fatalf("indexed %s dop %d: %v\n%s", eng.name, dop, err, sq.SQL)
					}
					if d := firstDiff(want, ordered(res)); d != "" {
						t.Fatalf("%s dop %d: indexed plan diverged from no-index baseline: %s", eng.name, dop, d)
					}
				}
			}
		})
	}
}

func TestOrderDifferentialCorpus(t *testing.T) {
	c, err := replay.Load("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	db := integDatabase(t)
	ctx := context.Background()

	for _, q := range c.Queries {
		q := q
		if q.CancelAfterRows > 0 || q.Expect.Error != "" {
			continue // no deterministic output to compare
		}
		for _, dop := range []int{1, 2, 8} {
			dop := dop
			if q.DOP > 0 && dop != 1 {
				continue // degree-pinned queries run once
			}
			t.Run(fmt.Sprintf("%s/dop%d", q.Name, dop), func(t *testing.T) {
				base, err := replay.RunLocalOpts(ctx, db, q, dop, gapplydb.WithoutIndexes())
				if err != nil {
					t.Fatal(err)
				}
				if base.Code != "" {
					t.Fatalf("no-index baseline failed: %s: %v", base.Code, base.Err)
				}
				for _, eng := range []struct {
					name  string
					extra []gapplydb.QueryOption
				}{
					{"batch", nil},
					{"row", []gapplydb.QueryOption{gapplydb.WithRowExecution()}},
				} {
					got, err := replay.RunLocalOpts(ctx, db, q, dop, eng.extra...)
					if err != nil {
						t.Fatal(err)
					}
					if got.Code != "" {
						t.Fatalf("indexed %s failed: %s: %v", eng.name, got.Code, got.Err)
					}
					if err := replay.DiffRendered(got.Rendered, base.Rendered); err != nil {
						t.Fatalf("%s: indexed plan diverged from no-index baseline: %v", eng.name, err)
					}
				}
			})
		}
	}
}
