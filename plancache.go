package gapplydb

import (
	"container/list"
	"sync"
)

// planCacheCapacity bounds the statement plan cache: enough for a
// realistic publishing workload's statement set (the paper's evaluation
// uses a handful of templates), small enough that a scan of ad-hoc
// statements cannot hold memory.
const planCacheCapacity = 256

// planCache is a bounded LRU of compiled statements, keyed by (query
// text, options fingerprint, catalog version, stats epoch). Cached
// entries are immutable after insertion — the plan tree and trace are
// only ever read by executions — so one entry may serve any number of
// concurrent callers. Safe for concurrent use.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

type planCacheEntry struct {
	key string
	c   *compiled
}

func newPlanCache() *planCache {
	return &planCache{entries: make(map[string]*list.Element), lru: list.New()}
}

// get returns the cached compilation for key, marking it most recently
// used.
func (p *planCache) get(key string) (*compiled, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.entries[key]
	if !ok {
		return nil, false
	}
	p.lru.MoveToFront(el)
	return el.Value.(*planCacheEntry).c, true
}

// put inserts (or refreshes) a compilation, evicting the least recently
// used entry past capacity. Entries keyed under an old catalog version
// or stats epoch are never looked up again and age out the same way.
func (p *planCache) put(key string, c *compiled) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		el.Value.(*planCacheEntry).c = c
		p.lru.MoveToFront(el)
		return
	}
	p.entries[key] = p.lru.PushFront(&planCacheEntry{key: key, c: c})
	for p.lru.Len() > planCacheCapacity {
		last := p.lru.Back()
		p.lru.Remove(last)
		delete(p.entries, last.Value.(*planCacheEntry).key)
	}
}

// clear drops every entry.
func (p *planCache) clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = make(map[string]*list.Element)
	p.lru.Init()
}

// len reports the current entry count (tests).
func (p *planCache) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
