// Quickstart: create tables, load rows, and run groupwise-processing
// queries with the paper's extended SQL syntax.
package main

import (
	"fmt"
	"log"

	"gapplydb"
)

func main() {
	db := gapplydb.Open()

	// A little parts-and-suppliers schema (the paper's running example).
	check(db.CreateTable("supplier",
		[]gapplydb.Column{{Name: "s_suppkey", Type: "int"}, {Name: "s_name", Type: "string"}},
		[]string{"s_suppkey"}))
	check(db.CreateTable("part",
		[]gapplydb.Column{
			{Name: "p_partkey", Type: "int"},
			{Name: "p_name", Type: "string"},
			{Name: "p_retailprice", Type: "float"},
		},
		[]string{"p_partkey"}))
	check(db.CreateTable("partsupp",
		[]gapplydb.Column{{Name: "ps_partkey", Type: "int"}, {Name: "ps_suppkey", Type: "int"}},
		[]string{"ps_partkey", "ps_suppkey"},
		gapplydb.ForeignKey{Columns: []string{"ps_partkey"}, RefTable: "part", RefColumns: []string{"p_partkey"}},
		gapplydb.ForeignKey{Columns: []string{"ps_suppkey"}, RefTable: "supplier", RefColumns: []string{"s_suppkey"}}))

	check(db.Insert("supplier", []any{1, "Acme Metals"}, []any{2, "Bolt Bazaar"}))
	check(db.Insert("part",
		[]any{1, "bolt", 1.50}, []any{2, "nut", 0.75},
		[]any{3, "washer", 0.25}, []any{4, "flange", 12.00}))
	check(db.Insert("partsupp",
		[]any{1, 1}, []any{2, 1}, []any{3, 1}, // Acme: bolt, nut, washer
		[]any{3, 2}, []any{4, 2}))             // Bolt Bazaar: washer, flange
	db.RefreshStats() // give the optimizer fresh cardinalities

	// The paper's Q2: for each supplier, how many of its parts cost at
	// least / less than the supplier's average part price. The per-group
	// query runs once per group, with `g` bound to the group's rows.
	res, err := db.Query(`
		select gapply(
			select count(*), null from g
			where p_retailprice >= (select avg(p_retailprice) from g)
			union all
			select null, count(*) from g
			where p_retailprice < (select avg(p_retailprice) from g)
		) as (at_or_above_avg, below_avg)
		from partsupp, part
		where ps_partkey = p_partkey
		group by ps_suppkey : g`)
	check(err)
	fmt.Println("Parts priced around each supplier's average:")
	fmt.Print(res.String())
	fmt.Printf("(%d groups processed in %v)\n\n", res.Stats.Groups, res.Elapsed)

	// EXPLAIN shows the optimized plan; here the optimizer has pruned
	// the partitioned columns (projection-before-GApply, paper §4.1).
	plan, err := db.Explain(`
		select gapply(select avg(p_retailprice) from g) as (avg_price)
		from partsupp, part where ps_partkey = p_partkey
		group by ps_suppkey : g`,
		gapplydb.WithoutRule("gapply-to-groupby"))
	check(err)
	fmt.Println("Optimized plan for a per-supplier average:")
	fmt.Print(plan)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
