// Data warehousing: groupwise processing was first motivated by
// decision-support queries (Chatziantoniou & Ross, VLDB'96/'97 — the
// paper's §6 credits them), and the paper notes all its GApply rules
// apply there too. This example runs classic warehouse analyses over
// TPC-H customers/orders with the extended syntax.
package main

import (
	"fmt"
	"log"

	"gapplydb"
)

func main() {
	db, err := gapplydb.OpenTPCH(0.002)
	if err != nil {
		log.Fatal(err)
	}

	// 1. For each customer: how many orders are above and below their
	// own average order value — the canonical "multiple features of
	// groups" query that is painful in plain SQL.
	res, err := db.Query(`
		select gapply(
			select count(*), null from g
			where o_totalprice >= (select avg(o_totalprice) from g)
			union all
			select null, count(*) from g
			where o_totalprice < (select avg(o_totalprice) from g)
		) as (big_orders, small_orders)
		from customer, orders
		where c_custkey = o_custkey
		group by c_custkey : g`)
	check(err)
	fmt.Printf("Per-customer order split (first 5 of %d customers):\n", res.Stats.Groups)
	printTop(res, 5)

	// 2. Each customer's single largest order: groupwise top-1.
	res, err = db.Query(`
		select gapply(
			select c_name, o_orderkey, o_totalprice from g
			where o_totalprice = (select max(o_totalprice) from g)
		)
		from customer, orders
		where c_custkey = o_custkey
		group by c_custkey : g`)
	check(err)
	fmt.Printf("\nLargest order per customer (first 5 of %d rows):\n", len(res.Rows))
	printTop(res, 5)

	// 3. Market-segment profile: for each segment, the spread between
	// its best and worst account balances plus its population — a pure
	// aggregate per-group query the optimizer converts to a plain
	// groupby (the paper's GApply→groupby rule).
	q3 := `
		select gapply(
			select count(*), min(c_acctbal), max(c_acctbal) from g
		) as (customers, worst_balance, best_balance)
		from customer
		group by c_mktsegment : g`
	res, err = db.Query(q3)
	check(err)
	fmt.Println("\nMarket segment profile:")
	fmt.Print(res.String())

	plan, err := db.Explain(q3)
	check(err)
	fmt.Println("...which the optimizer runs as a traditional groupby:")
	fmt.Print(plan)
}

func printTop(res *gapplydb.Result, n int) {
	for i, row := range res.Rows {
		if i >= n {
			break
		}
		fmt.Printf("  %v\n", row)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
