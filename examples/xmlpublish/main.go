// XML publishing: the paper's motivating application. Defines the
// Figure 1 supplier view over TPC-H, runs the §2 queries with both
// server translation strategies — the classic sorted outer union and
// the GApply plan — verifies they publish identical XML, and reports
// the speedup.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"gapplydb"
	"gapplydb/xmlpub"
)

func main() {
	db, err := gapplydb.OpenTPCH(0.002)
	if err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		name string
		q    *xmlpub.FLWR
	}{
		{"Q1 (parts + average price per supplier)", xmlpub.Q1()},
		{"Q2 (counts above/below the supplier average)", xmlpub.Q2()},
		{"Q3 (high-end and low-end parts)", xmlpub.Q3(0.9, 1.1)},
		{"group selection (suppliers of a part over 2050)", xmlpub.ExpensiveSuppliers(2050)},
	}

	for _, entry := range queries {
		fmt.Printf("== %s ==\n", entry.name)

		var souBuf, gaBuf strings.Builder
		souTime := publish(db, entry.q, xmlpub.SortedOuterUnion, &souBuf)
		gaTime := publish(db, entry.q, xmlpub.GApply, &gaBuf)

		same := souBuf.String() == gaBuf.String()
		fmt.Printf("  sorted outer union: %8v\n", souTime.Round(time.Microsecond))
		fmt.Printf("  gapply:             %8v   (%.2fx)\n", gaTime.Round(time.Microsecond),
			float64(souTime)/float64(gaTime))
		fmt.Printf("  identical XML: %v, %d bytes\n\n", same, gaBuf.Len())

		if !same {
			log.Fatalf("strategies disagree for %s", entry.name)
		}
	}

	// Show a fragment of the published document.
	var out strings.Builder
	if _, err := xmlpub.Publish(db, xmlpub.Q1(), xmlpub.GApply, &out); err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(out.String(), "\n", 12)
	fmt.Println("First lines of the Q1 document:")
	fmt.Println(strings.Join(lines[:11], "\n"))
	fmt.Println("  ...")
}

func publish(db *gapplydb.Database, q *xmlpub.FLWR, s xmlpub.Strategy, w *strings.Builder) time.Duration {
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		w.Reset()
		res, err := xmlpub.Publish(db, q, s, w)
		if err != nil {
			log.Fatalf("%s: %v\nSQL: %s", s, err, q.SQL(s))
		}
		if i == 0 || res.Elapsed < best {
			best = res.Elapsed
		}
	}
	return best
}
