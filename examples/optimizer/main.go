// Optimizer tour: shows each of the paper's §4 transformation rules
// firing, by printing the plan with the rule disabled and enabled.
package main

import (
	"fmt"
	"log"

	"gapplydb"
)

type demo struct {
	title string
	rule  string
	query string
	force bool
	both  []gapplydb.QueryOption
}

func main() {
	db, err := gapplydb.OpenTPCH(0.001)
	if err != nil {
		log.Fatal(err)
	}

	demos := []demo{
		{
			title: "Placing Selections Before GApply (§4.1, Theorem 1)",
			rule:  "selection-before-gapply",
			query: `select gapply(select p_name from g where p_brand = 'Brand#11')
				from partsupp, part where ps_partkey = p_partkey
				group by ps_suppkey : g`,
		},
		{
			title: "Placing Projections Before GApply (§4.1)",
			rule:  "projection-before-gapply",
			query: `select gapply(select avg(p_retailprice) from g) as (ap)
				from partsupp, part where ps_partkey = p_partkey
				group by ps_suppkey : g`,
			both: []gapplydb.QueryOption{gapplydb.WithoutRule("gapply-to-groupby")},
		},
		{
			title: "Converting GApply to groupby (§4.1)",
			rule:  "gapply-to-groupby",
			query: `select gapply(select avg(p_retailprice), count(*) from g) as (ap, n)
				from partsupp, part where ps_partkey = p_partkey
				group by ps_suppkey : g`,
		},
		{
			title: "Group Selection via exists (§4.2, Figure 5)",
			rule:  "group-selection-exists",
			force: true,
			query: `select gapply(select * from g where exists
					(select p_partkey from g where p_retailprice > 2050))
				from partsupp, part where ps_partkey = p_partkey
				group by ps_suppkey : g`,
		},
		{
			title: "Group Selection via aggregates (§4.2)",
			rule:  "group-selection-aggregate",
			force: true,
			query: `select gapply(select * from g where
					(select avg(p_retailprice) from g) > 1500)
				from partsupp, part where ps_partkey = p_partkey
				group by ps_suppkey : g`,
		},
		{
			title: "Invariant Grouping: GApply below foreign-key joins (§4.3, Figure 7)",
			rule:  "invariant-grouping",
			force: true,
			query: `select gapply(select s_name, p_name, p_retailprice from g
					where p_retailprice = (select min(p_retailprice) from g))
				from partsupp, part, supplier
				where ps_partkey = p_partkey and ps_suppkey = s_suppkey
				group by s_suppkey : g`,
		},
	}

	for _, d := range demos {
		fmt.Printf("==== %s ====\n", d.title)
		withoutOpts := append([]gapplydb.QueryOption{gapplydb.WithoutRule(d.rule)}, d.both...)
		withOpts := append([]gapplydb.QueryOption{}, d.both...)
		if d.force {
			withOpts = append(withOpts, gapplydb.ForceRule(d.rule))
		}
		before, err := db.Explain(d.query, withoutOpts...)
		check(err)
		after, err := db.Explain(d.query, withOpts...)
		check(err)
		fmt.Printf("-- rule off:\n%s-- rule on:\n%s\n", before, after)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
