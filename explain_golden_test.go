package gapplydb_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gapplydb/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite the EXPLAIN golden files under testdata/explain")

// figure8Query fetches one Figure 8 statement from the evaluation suite
// by name, so the golden battery explains exactly what bench measures.
func figure8Query(t *testing.T, name string) string {
	t.Helper()
	for _, q := range experiments.SuiteQueries() {
		if q.Name == name {
			return q.SQL
		}
	}
	t.Fatalf("suite query %q not found", name)
	return ""
}

// TestExplainGolden pins the rendered EXPLAIN report — plan shape,
// per-node estimates, plan hash and optimizer trace — for the paper's
// four Figure 8 queries under both translation strategies. Beyond the
// byte comparison it asserts the paper's §5 claim structurally: the
// GApply plan scans the fact table (partsupp) exactly once, while the
// sorted-outer-union / flat-SQL baseline re-joins it repeatedly.
//
// Run with -update to regenerate the goldens after an intended planner
// or renderer change; the diff is the review artifact.
func TestExplainGolden(t *testing.T) {
	db := integDatabase(t)
	cases := []struct {
		file  string
		suite string
		// gapply marks the strategy expected to touch partsupp once.
		gapply bool
	}{
		{"q1_gapply", "figure8/Q1/with", true},
		{"q1_baseline", "figure8/Q1/without", false},
		{"q2_gapply", "figure8/Q2/with", true},
		{"q2_baseline", "figure8/Q2/without", false},
		{"q3_gapply", "figure8/Q3/with", true},
		{"q3_baseline", "figure8/Q3/without", false},
		{"q4_gapply", "figure8/Q4/with", true},
		{"q4_baseline", "figure8/Q4/without", false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			sql := figure8Query(t, tc.suite)
			e, err := db.ExplainPlan(sql)
			if err != nil {
				t.Fatalf("explain: %v\n%s", err, sql)
			}
			got := e.String()

			// Count fact-table scans in the plan tree only — the trace
			// section repeats operator summaries.
			scans := strings.Count(e.Plan, "Scan partsupp")
			if tc.gapply {
				if scans != 1 {
					t.Errorf("GApply plan scans partsupp %d times, want exactly 1:\n%s", scans, e.Plan)
				}
				if !strings.Contains(e.Plan, "GApply") {
					t.Errorf("plan lacks a GApply operator:\n%s", e.Plan)
				}
			} else if scans < 2 {
				t.Errorf("baseline plan scans partsupp %d times, want the redundant joins (>= 2):\n%s", scans, e.Plan)
			}

			path := filepath.Join("testdata", "explain", tc.file+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run: go test -run TestExplainGolden -update ./): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN output changed (intended? regenerate with -update):\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
