select gapply(select 0, count(*), min(v) from g)
from (select p_size as k, p_retailprice as v from part where p_size < 10
      union all
      select null, p_retailprice from part where p_size >= 45) as u(k, v)
group by k : g
