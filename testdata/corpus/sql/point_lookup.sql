select s_name, s_acctbal from supplier where s_suppkey = 3
