
	select tmp.k1, p_name, p_size, p_retailprice
	from (select ps_suppkey, p_size, avg(p_retailprice)
	      from partsupp, part
	      where p_partkey = ps_partkey
	      group by ps_suppkey, p_size) as tmp(k1, k2, avgprice),
	     partsupp, part
	where ps_partkey = p_partkey
	  and ps_suppkey = tmp.k1
	  and p_size = tmp.k2
	  and p_retailprice > tmp.avgprice
	order by tmp.k1
