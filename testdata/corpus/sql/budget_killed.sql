select p_name, p_retailprice from part, partsupp where ps_partkey = p_partkey
