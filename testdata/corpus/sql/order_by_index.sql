select ps_partkey, ps_suppkey, ps_availqty from partsupp order by ps_suppkey
