select ps_partkey, p_partkey, s_suppkey from partsupp, part, supplier
