select gapply(select p_name, p_retailprice from g, part
				where ps_partkey = p_partkey and p_retailprice > 1000)
			from partsupp group by ps_suppkey : g
