select gapply(select 0, p_name, p_retailprice, null from g union all select 1, null, null, avg(p_retailprice) from g) from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g
