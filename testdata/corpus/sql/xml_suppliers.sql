select gapply(select 0, p_name, p_retailprice from g where exists (select ps_suppkey from g where p_retailprice > 1000)) from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g
