select gapply(select 0, ps_suppkey, ps_availqty from g union all select 1, null, sum(ps_availqty) from g) from partsupp group by ps_partkey : g
