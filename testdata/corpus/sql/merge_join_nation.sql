select s_name, n_name, s_acctbal from supplier, nation where s_nationkey = n_nationkey
