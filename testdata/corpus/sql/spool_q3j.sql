select gapply(select p_name, ps_availqty from g, part
				where ps_partkey = p_partkey)
			from partsupp group by ps_suppkey : g
