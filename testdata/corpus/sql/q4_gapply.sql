
	select gapply(select p_name, p_retailprice from g
	              where p_retailprice > (select avg(p_retailprice) from g))
	from partsupp, part
	where ps_partkey = p_partkey
	group by ps_suppkey, p_size : g
