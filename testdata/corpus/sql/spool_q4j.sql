select gapply(select min(p_retailprice), count(*) from g, part
				where ps_partkey = p_partkey and p_size < 30)
			from partsupp group by ps_suppkey : g
