select count(*) from partsupp, part, supplier
