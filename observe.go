package gapplydb

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gapplydb/internal/core"
	"gapplydb/internal/exec"
	"gapplydb/internal/opt"
	"gapplydb/internal/stats"
)

// RuleApplication records one optimizer rule application considered
// while planning a query: which rule, on which optimization pass, the
// plan shape before and after (compact summaries), and — for cost-based
// rules — the estimated costs that decided it. Rejected cost-based
// applications are kept (Accepted=false) so a trace shows not just what
// the optimizer did but what it declined to do.
type RuleApplication struct {
	Rule       string
	Pass       int
	CostBased  bool
	Forced     bool
	Accepted   bool
	CostBefore float64
	CostAfter  float64
	Before     string
	After      string
}

func toTrace(in []opt.RuleApplication) []RuleApplication {
	if in == nil {
		return nil
	}
	out := make([]RuleApplication, len(in))
	for i, a := range in {
		out[i] = RuleApplication{
			Rule: a.Rule, Pass: a.Pass,
			CostBased: a.CostBased, Forced: a.Forced, Accepted: a.Accepted,
			CostBefore: a.CostBefore, CostAfter: a.CostAfter,
			Before: a.Before, After: a.After,
		}
	}
	return out
}

// String renders one trace entry on a single line.
func (a RuleApplication) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[pass %d] %s", a.Pass, a.Rule)
	if a.CostBased {
		fmt.Fprintf(&b, " cost %.0f -> %.0f", a.CostBefore, a.CostAfter)
	}
	switch {
	case a.Forced:
		b.WriteString(" (forced)")
	case !a.Accepted:
		b.WriteString(" (rejected)")
	}
	fmt.Fprintf(&b, ": %s => %s", a.Before, a.After)
	return b.String()
}

// Explanation is the report ExplainPlan/ExplainAnalyze build: the
// rendered plan tree (annotated per node with the optimizer's estimates
// and, after ANALYZE, the measured actuals), the plan fingerprint, the
// root estimate, and the optimizer's rule trace.
type Explanation struct {
	// Plan is the indented operator tree. Every node carries
	// "(rows=<est> cost=<est>)"; after ANALYZE also
	// "(actual rows=<n> loops=<n> time=<d>)".
	Plan string
	// PlanHash fingerprints the plan shape (FNV-1a of the canonical
	// rendering): two queries with equal hashes run identical plans.
	PlanHash string
	// EstimatedRows/EstimatedCost are the optimizer's root estimates.
	EstimatedRows float64
	EstimatedCost float64
	// Trace is the optimizer's rule application log, in order.
	Trace []RuleApplication
	// Analyzed reports whether the query was executed (EXPLAIN ANALYZE).
	Analyzed bool
	// Result holds the executed query's result when Analyzed (the rows
	// the caller would have gotten without EXPLAIN), nil otherwise.
	Result *Result
}

// String renders the full report: the annotated tree, the root
// estimates and plan hash, execution totals when analyzed, and the
// optimizer trace.
func (e *Explanation) String() string {
	var b strings.Builder
	b.WriteString(e.Plan)
	fmt.Fprintf(&b, "estimated rows: %.0f  estimated cost: %.0f\n", e.EstimatedRows, e.EstimatedCost)
	fmt.Fprintf(&b, "plan hash: %s\n", e.PlanHash)
	if e.Analyzed && e.Result != nil {
		fmt.Fprintf(&b, "execution time: %s  rows: %d\n", e.Result.Elapsed.Round(time.Microsecond), len(e.Result.Rows))
	}
	if len(e.Trace) > 0 {
		b.WriteString("optimizer trace:\n")
		for _, a := range e.Trace {
			fmt.Fprintf(&b, "  %s\n", a)
		}
	}
	return b.String()
}

// planResult packages the report as a query Result (one "QUERY PLAN"
// column, one row per line) — what Query returns for a statement with
// an EXPLAIN prefix.
func (e *Explanation) planResult() *Result {
	text := e.String()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	out := &Result{
		Columns: []string{"QUERY PLAN"},
		Rows:    make([][]any, len(lines)),
		Trace:   e.Trace,
		text:    text,
	}
	if e.Result != nil {
		out.Elapsed = e.Result.Elapsed
		out.Stats = e.Result.Stats
		out.TraceID = e.Result.TraceID
	}
	for i, l := range lines {
		out.Rows[i] = []any{l}
	}
	return out
}

// ExplainPlan compiles the statement and reports the optimized plan
// without executing it. The query may, but need not, carry an EXPLAIN
// prefix.
func (db *Database) ExplainPlan(query string, options ...QueryOption) (*Explanation, error) {
	release, err := db.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	cfg := makeConfig(options)
	c, hit, err := db.compile(query, cfg)
	if err != nil {
		return nil, err
	}
	cfg.planCacheHit = hit
	return db.explainCompiled(context.Background(), c, cfg, false)
}

// ExplainAnalyze compiles AND executes the statement with per-operator
// instrumentation, reporting the plan annotated with actual row counts,
// loop counts and inclusive wall time next to the estimates. The
// executed rows are available via the returned Explanation's Result.
func (db *Database) ExplainAnalyze(query string, options ...QueryOption) (*Explanation, error) {
	return db.ExplainAnalyzeContext(context.Background(), query, options...)
}

// ExplainAnalyzeContext is ExplainAnalyze under a caller-supplied
// context: the instrumented execution obeys the same cancellation,
// deadline and budget rules as QueryContext.
func (db *Database) ExplainAnalyzeContext(ctx context.Context, query string, options ...QueryOption) (*Explanation, error) {
	release, err := db.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	cfg := makeConfig(options)
	tb := db.traceSetup(&cfg, query)
	c, hit, err := db.compile(query, cfg)
	if err != nil {
		db.finishTrace(tb, err)
		return nil, err
	}
	cfg.planCacheHit = hit
	// The analyzed execution finishes and records the trace.
	return db.explainCompiled(ctx, c, cfg, true)
}

// explainCompiled builds the report for an already-compiled statement,
// executing it first when analyze is set.
func (db *Database) explainCompiled(ctx context.Context, c *compiled, cfg queryConfig, analyze bool) (*Explanation, error) {
	var res *Result
	if analyze {
		cfg.instrument = true
		r, err := db.execute(ctx, c, cfg)
		if err != nil {
			return nil, err
		}
		res = r
	}
	est := stats.NewEstimator(db.st).EstimateAll(c.plan)
	var prof *exec.Profile
	if res != nil {
		prof = res.prof
	}
	annot := func(n core.Node) string {
		e := est[n]
		s := fmt.Sprintf("(rows=%.0f cost=%.0f)", e.Rows, e.Cost)
		// Order properties: which ordering the node's output provides
		// (the planner's interesting-orders currency), and whether an
		// OrderBy's sort work was elided because the input already
		// provides it. The [elided] marker on the operator line itself
		// comes from Describe; "sort elided" here names the why.
		if ord := core.ProvidedOrdering(n); len(ord) > 0 {
			s += fmt.Sprintf(" (provides: [%s])", core.FormatOrdering(ord))
		}
		if ob, isOrderBy := n.(*core.OrderBy); isOrderBy && ob.Elided {
			s += " (sort elided)"
		}
		if prof != nil {
			a := prof.Stats(n)
			s += fmt.Sprintf(" (actual rows=%d loops=%d time=%s)", a.Rows, a.Opens, a.Time.Round(time.Microsecond))
			if a.SpoolBuilds > 0 || a.SpoolHits > 0 {
				// This subtree was spooled: actuals above are the single
				// real execution; re-Opens replayed the materialization.
				s += fmt.Sprintf(" (spool builds=%d hits=%d bytes=%d)", a.SpoolBuilds, a.SpoolHits, a.SpoolBytes)
			}
		}
		return s
	}
	root := est[c.plan]
	return &Explanation{
		Plan:          core.FormatAnnotated(c.plan, annot),
		PlanHash:      core.PlanHash(c.plan),
		EstimatedRows: root.Rows,
		EstimatedCost: root.Cost,
		Trace:         toTrace(c.trace),
		Analyzed:      analyze,
		Result:        res,
	}, nil
}

// recordExecMetrics folds one execution's counters into the database's
// lifetime metrics registry.
func (db *Database) recordExecMetrics(c exec.Counters) {
	db.reg.Counter("rows_scanned").Add(c.RowsScanned)
	db.reg.Counter("groups_formed").Add(c.Groups)
	db.reg.Counter("inner_execs").Add(c.InnerExecs)
	db.reg.Counter("serial_group_execs").Add(c.SerialGroupExecs)
	db.reg.Counter("parallel_group_execs").Add(c.ParallelGroupExecs)
	db.reg.Counter("apply_execs").Add(c.ApplyExecs)
	db.reg.Counter("apply_cache_hits").Add(c.ApplyCacheHits)
	db.reg.Counter("join_probes").Add(c.JoinProbes)
	db.reg.Counter("spool_builds").Add(c.SpoolBuilds)
	db.reg.Counter("spool_hits").Add(c.SpoolHits)
	// PlanCacheHits is intentionally NOT folded here: the registry's
	// plan_cache_hits/plan_cache_misses are counted once at compile time,
	// and an execution-side add would double-count hits.
}
