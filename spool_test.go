package gapplydb_test

import (
	"errors"
	"strings"
	"testing"

	"gapplydb"
	"gapplydb/experiments"
	"gapplydb/xmlpub"
)

// The spool battery covers the invariant-subtree spool: per-group plans
// that join the group variable against base tables have a group-invariant
// side that is materialized once per GApply and replayed for every other
// group, at any parallel degree. Spooling is an execution-layer rewrite,
// so it must be invisible in the output: rows byte-identical (order
// included) with the spool on and off, serial and parallel.

// spoolQueries are the spooling experiment's join-heavy statements:
// per-group plans whose inner trees carry a group-invariant subtree (a
// base-table scan, optionally under a selection, on the build side of
// the per-group join).
func spoolQueries() []experiments.SuiteQuery {
	return experiments.SpoolQueries()
}

// TestSpoolDifferential: spool on vs off at dop 1, 2 and 8 produce
// byte-identical ordered rows, and the counters confirm the spool really
// engaged (builds > 0 on, == 0 off).
func TestSpoolDifferential(t *testing.T) {
	db := integDatabase(t)
	for _, q := range spoolQueries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			base, err := db.Query(q.SQL, gapplydb.WithDOP(1), gapplydb.WithoutSpooling())
			if err != nil {
				t.Fatalf("spool off: %v", err)
			}
			if base.Stats.SpoolBuilds != 0 || base.Stats.SpoolHits != 0 {
				t.Fatalf("WithoutSpooling still spooled: %+v", base.Stats)
			}
			want := ordered(base)
			for _, dop := range []int{1, 2, 8} {
				off, err := db.Query(q.SQL, gapplydb.WithDOP(dop), gapplydb.WithoutSpooling())
				if err != nil {
					t.Fatalf("dop %d spool off: %v", dop, err)
				}
				if d := firstDiff(want, ordered(off)); d != "" {
					t.Fatalf("dop %d spool off diverged: %s", dop, d)
				}
				on, err := db.Query(q.SQL, gapplydb.WithDOP(dop))
				if err != nil {
					t.Fatalf("dop %d spool on: %v", dop, err)
				}
				if on.Stats.SpoolBuilds == 0 {
					t.Fatalf("dop %d: no spool engaged on a join-heavy inner: %+v", dop, on.Stats)
				}
				if d := firstDiff(want, ordered(on)); d != "" {
					t.Fatalf("dop %d spool on diverged: %s", dop, d)
				}
			}
		})
	}
}

// TestSpoolBuildOnce pins the sharing contract: one GApply execution
// materializes each invariant subtree exactly once — even with eight
// workers re-Opening the per-group plan — and every other group replays
// it. RowsScanned confirms the base table under the spool was read once.
func TestSpoolBuildOnce(t *testing.T) {
	db := integDatabase(t)
	sql := spoolQueries()[0].SQL
	for _, dop := range []int{1, 8} {
		res, err := db.Query(sql, gapplydb.WithDOP(dop))
		if err != nil {
			t.Fatalf("dop %d: %v", dop, err)
		}
		if res.Stats.SpoolBuilds != 1 {
			t.Errorf("dop %d: SpoolBuilds = %d, want 1", dop, res.Stats.SpoolBuilds)
		}
		if want := res.Stats.Groups - 1; res.Stats.SpoolHits != want {
			t.Errorf("dop %d: SpoolHits = %d, want groups-1 = %d", dop, res.Stats.SpoolHits, want)
		}
		// partsupp once for the outer + part once for the single build:
		// without the spool the part scan repeats per group.
		off, err := db.Query(sql, gapplydb.WithDOP(dop), gapplydb.WithoutSpooling())
		if err != nil {
			t.Fatalf("dop %d off: %v", dop, err)
		}
		if res.Stats.RowsScanned >= off.Stats.RowsScanned {
			t.Errorf("dop %d: spool did not reduce scanning: on=%d off=%d",
				dop, res.Stats.RowsScanned, off.Stats.RowsScanned)
		}
	}
}

// TestSpoolExplainAnalyze checks the report surface: the spooled subtree
// is annotated with builds/hits/bytes, and its actuals show the single
// real execution (loops=1) at any degree.
func TestSpoolExplainAnalyze(t *testing.T) {
	db := integDatabase(t)
	e, err := db.ExplainAnalyze(spoolQueries()[0].SQL, gapplydb.WithDOP(8))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Plan, "spool builds=1") {
		t.Errorf("EXPLAIN ANALYZE lacks spool annotation:\n%s", e.Plan)
	}
	if !strings.Contains(e.Plan, "hits=") || !strings.Contains(e.Plan, "bytes=") {
		t.Errorf("spool annotation incomplete:\n%s", e.Plan)
	}
}

// TestSpoolXMLDifferential locks in the end product: published documents
// are byte-identical with spooling disabled, across strategies and
// degrees (the Figure 8 views exercise the whole publishing stack).
func TestSpoolXMLDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential battery skipped in -short mode")
	}
	db := integDatabase(t)
	for _, tc := range []struct {
		name string
		q    *xmlpub.FLWR
	}{{"Q1", xmlpub.Q1()}, {"Q2", xmlpub.Q2()}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var want string
			for _, spool := range []bool{true, false} {
				for _, dop := range []int{1, 8} {
					opts := []gapplydb.QueryOption{gapplydb.WithDOP(dop)}
					if !spool {
						opts = append(opts, gapplydb.WithoutSpooling())
					}
					var buf stringsBuilder
					if _, err := xmlpub.Publish(db, tc.q, xmlpub.GApply, &buf, opts...); err != nil {
						t.Fatalf("spool=%t dop %d: %v", spool, dop, err)
					}
					doc := buf.String()
					if want == "" {
						want = doc
						continue
					}
					if doc != want {
						t.Fatalf("spool=%t dop %d produced a different document", spool, dop)
					}
				}
			}
			if want == "" {
				t.Fatal("empty document")
			}
		})
	}
}

// TestSpoolBudget: spooled bytes count against MaxPartitionBytes, so a
// budget that the materialization exceeds kills the query with a
// ResourceError instead of buffering past the cap.
func TestSpoolBudget(t *testing.T) {
	db := integDatabase(t)
	_, err := db.Query(spoolQueries()[1].SQL,
		gapplydb.WithBudget(gapplydb.Budget{MaxPartitionBytes: 64}))
	if err == nil {
		t.Fatal("expected a resource error from the spool materialization")
	}
	var re *gapplydb.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("error = %v, want *ResourceError", err)
	}
}
