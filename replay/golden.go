package replay

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"gapplydb"
)

// UpdateGoldens regenerates every golden from an embedded database
// loaded at the manifest's scale factor, executing each query at dop 1
// (dop is output-invariant — the differential suite pins that — so any
// degree would produce the same bytes). Files whose content is already
// correct are left untouched; the returned list names the files that
// changed, so a second pass on an unchanged engine returns nothing —
// the determinism property the test suite asserts. Queries expecting an
// error have no goldens; a stale golden file for one is removed.
func UpdateGoldens(ctx context.Context, db *gapplydb.Database, c *Corpus) ([]string, error) {
	res, err := db.QueryContext(ctx, dataGuardSQL)
	if err != nil {
		return nil, fmt.Errorf("replay: data guard: %w", err)
	}
	if err := c.CheckData(res.Rows); err != nil {
		return nil, err
	}
	var changed []string
	dir := filepath.Join(c.Dir, "golden")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	for _, q := range c.Queries {
		path := c.GoldenPath(q)
		if q.Expect.Error != "" {
			if _, err := os.Stat(path); err == nil {
				if err := os.Remove(path); err != nil {
					return nil, err
				}
				changed = append(changed, filepath.Base(path))
			}
			continue
		}
		out, err := RunLocal(ctx, db, q, 1)
		if err != nil {
			return nil, err
		}
		if out.Code != "" {
			return nil, fmt.Errorf("replay: %s: golden run failed (%s): %w", q.Name, out.Code, out.Err)
		}
		old, readErr := os.ReadFile(path)
		if readErr == nil && bytes.Equal(old, out.Rendered) {
			continue
		}
		if err := os.WriteFile(path, out.Rendered, 0o644); err != nil {
			return nil, err
		}
		changed = append(changed, filepath.Base(path))
	}
	sort.Strings(changed)
	return changed, nil
}

// dataGuardSQL is the cheap probe CheckData interprets.
const dataGuardSQL = "select count(*) from partsupp"

// CheckData checks the rows returned by dataGuardSQL against the
// manifest: goldens are only meaningful over the data they were
// generated from, and a scale-factor mismatch would otherwise fail
// every golden with a confusing diff instead of the actual cause.
func (c *Corpus) CheckData(rows [][]any) error {
	if len(rows) != 1 || len(rows[0]) != 1 {
		return fmt.Errorf("replay: data guard: unexpected shape %v", rows)
	}
	n, ok := rows[0][0].(int64)
	if !ok || n != c.PartsuppRows {
		return fmt.Errorf("replay: data mismatch: partsupp has %v rows but the corpus was generated at scale factor %g (%d rows) — use a server loaded with -sf %g",
			rows[0][0], c.ScaleFactor, c.PartsuppRows, c.ScaleFactor)
	}
	return nil
}
