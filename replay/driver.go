package replay

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"gapplydb/client"
	"gapplydb/internal/metrics"
)

// DriverConfig configures one replay run against a live gapplyd.
type DriverConfig struct {
	// Addr is the server's wire-protocol address.
	Addr string
	// Mode selects the load phase's arrival discipline: "open" fires
	// Poisson arrivals at Rate regardless of completions (the honest way
	// to measure latency under load), "closed" runs Clients workers
	// back-to-back (the honest way to measure capacity).
	Mode string
	// Rate is the open-loop arrival rate in queries/second.
	Rate float64
	// Clients is the connection count (open) or worker count (closed).
	Clients int
	// Duration bounds the load phase; 0 runs conformance only.
	Duration time.Duration
	// Seed makes the workload mix reproducible.
	Seed int64
	// MetricsURL, when set, is the server's /metrics endpoint; the driver
	// scrapes admission counters around the load phase and asserts the
	// manifest's queued/rejected bounds against the deltas.
	MetricsURL string
	// Trace runs the conformance pass with a client-issued trace ID per
	// execution and asserts the server echoes it on the terminating
	// frame. Goldens are still compared byte-exactly — tracing must not
	// perturb results.
	Trace bool
	// TracesURL, when set with Trace, is the server's /debug/traces
	// endpoint; after conformance the driver fetches the slowest
	// successful run's Chrome trace into Report.SlowestTrace.
	TracesURL string
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Modes of the load phase.
const (
	ModeOpen   = "open"
	ModeClosed = "closed"
)

func (cfg *DriverConfig) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

func (cfg *DriverConfig) defaults() error {
	if cfg.Addr == "" {
		return fmt.Errorf("replay: driver needs a server address")
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeOpen
	}
	if cfg.Mode != ModeOpen && cfg.Mode != ModeClosed {
		return fmt.Errorf("replay: bad mode %q (want %q or %q)", cfg.Mode, ModeOpen, ModeClosed)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Mode == ModeOpen && cfg.Rate <= 0 && cfg.Duration > 0 {
		return fmt.Errorf("replay: open-loop mode needs a positive -rate")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return nil
}

// Run replays the corpus against a live server: a data guard, then the
// conformance pass (every query at every matrix degree, twice, with the
// manifest's expectations asserted), then — when Duration > 0 — the
// mixed load phase under arrival-rate control. The report is always
// returned, even on assertion failure, so the caller can persist it;
// the error is non-nil iff any assertion failed or the harness itself
// broke.
func Run(ctx context.Context, c *Corpus, cfg DriverConfig) (*Report, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rep := &Report{
		Corpus:      c.Dir,
		ScaleFactor: c.ScaleFactor,
		Mode:        cfg.Mode,
		Seed:        cfg.Seed,
		Started:     time.Now().UTC().Format(time.RFC3339),
	}

	conn, err := client.Dial(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("replay: dial %s: %w", cfg.Addr, err)
	}
	defer conn.Close()
	if err := guardData(ctx, conn, c); err != nil {
		return nil, err
	}
	cfg.logf("data guard ok: partsupp has %d rows (sf %g)", c.PartsuppRows, c.ScaleFactor)

	if err := runConformance(ctx, conn, c, &cfg, rep); err != nil {
		return rep, err
	}
	cfg.logf("conformance: %d runs, %d assertions", len(rep.Conformance), len(rep.Asserts))
	if cfg.Trace {
		captureSlowestTrace(&cfg, rep)
	}

	if cfg.Duration > 0 {
		if err := runLoad(ctx, c, &cfg, rep); err != nil {
			return rep, err
		}
	}

	failed := 0
	for _, a := range rep.Asserts {
		if !a.OK {
			failed++
		}
	}
	rep.Passed = failed == 0
	if failed > 0 {
		return rep, fmt.Errorf("replay: %d assertion(s) failed (first: %s)", failed, firstFailure(rep))
	}
	return rep, nil
}

func firstFailure(rep *Report) string {
	for _, a := range rep.Asserts {
		if !a.OK {
			return a.Name + ": " + a.Detail
		}
	}
	return ""
}

// guardData verifies the server holds the data set the goldens were
// generated from before any golden is compared.
func guardData(ctx context.Context, conn *client.Conn, c *Corpus) error {
	rows, err := conn.Query(ctx, dataGuardSQL)
	if err != nil {
		return fmt.Errorf("replay: data guard: %w", err)
	}
	var got [][]any
	for {
		row, ok, err := rows.Next()
		if err != nil {
			return fmt.Errorf("replay: data guard: %w", err)
		}
		if !ok {
			break
		}
		got = append(got, row)
	}
	return c.CheckData(got)
}

// runConformance executes every corpus query at every matrix degree,
// twice in a row, and asserts the manifest's expectations: golden
// match, error taxonomy code, row-count floor, spool counters, and
// plan-cache hit on the repeat run.
func runConformance(ctx context.Context, conn *client.Conn, c *Corpus, cfg *DriverConfig, rep *Report) error {
	assert := func(name string, ok bool, format string, args ...any) {
		a := Assertion{Name: name, OK: ok}
		if !ok {
			a.Detail = fmt.Sprintf(format, args...)
			cfg.logf("FAIL %s: %s", name, a.Detail)
		}
		rep.Asserts = append(rep.Asserts, a)
	}
	for _, q := range c.Queries {
		for _, dop := range c.Workload.Dops {
			if q.DOP > 0 && dop != c.Workload.Dops[0] {
				continue // pinned-degree queries run once through the matrix
			}
			eff := q.effectiveDOP(dop)
			tag := fmt.Sprintf("%s@dop=%d", q.Name, eff)
			var runs [2]*Outcome
			for i := range runs {
				var out *Outcome
				var err error
				if cfg.Trace {
					id := client.NewTraceID()
					out, err = RunRemoteTraced(ctx, conn, q, dop, id)
					if err == nil {
						// The round-trip criterion: whatever frame terminates the
						// query — End or Error — must echo the issued ID.
						assert(fmt.Sprintf("%s/run%d/trace_echo", tag, i+1), out.TraceID == id,
							"terminating frame echoed trace %s, want %s", out.TraceID, id)
					}
				} else {
					out, err = RunRemote(ctx, conn, q, dop)
				}
				if err != nil {
					return fmt.Errorf("replay: %s run %d: %w", tag, i+1, err)
				}
				runs[i] = out
				cr := ConformanceRun{
					Query: q.Name, DOP: eff, Run: i + 1, Code: out.Code,
					Rows: out.Rows, ElapsedMS: ms(out.Elapsed),
					SpoolBuilds: out.Stats.SpoolBuilds, SpoolHits: out.Stats.SpoolHits,
					PlanCacheHit: out.Stats.PlanCacheHits > 0,
				}
				if !out.TraceID.IsZero() {
					cr.TraceID = out.TraceID.String()
				}
				rep.Conformance = append(rep.Conformance, cr)
			}
			for i, out := range runs {
				rtag := fmt.Sprintf("%s/run%d", tag, i+1)
				if q.Expect.Error != "" {
					assert(rtag+"/error", out.Code == q.Expect.Error,
						"error code = %q (%v), want %q", out.Code, out.Err, q.Expect.Error)
					continue
				}
				if !assertOK(assert, rtag+"/success", out.Code == "",
					"failed with %s: %v", out.Code, out.Err) {
					continue
				}
				if q.Expect.Golden {
					want, err := c.Golden(q)
					if err != nil {
						return err
					}
					diff := DiffRendered(out.Rendered, want)
					assert(rtag+"/golden", diff == nil, "%v", diff)
				}
				if q.Expect.MinRows > 0 {
					assert(rtag+"/min_rows", out.Rows >= q.Expect.MinRows,
						"rows = %d, want >= %d", out.Rows, q.Expect.MinRows)
				}
				if q.Expect.SpoolBuilds != nil {
					assert(rtag+"/spool_builds", out.Stats.SpoolBuilds == *q.Expect.SpoolBuilds,
						"spool builds = %d, want %d", out.Stats.SpoolBuilds, *q.Expect.SpoolBuilds)
				}
				if q.Expect.SpoolHitsMin != nil {
					assert(rtag+"/spool_hits", out.Stats.SpoolHits >= *q.Expect.SpoolHitsMin,
						"spool hits = %d, want >= %d", out.Stats.SpoolHits, *q.Expect.SpoolHitsMin)
				}
			}
			if q.Expect.PlanCacheHitOnRepeat && runs[1].Code == "" {
				assert(tag+"/plan_cache_repeat", runs[1].Stats.PlanCacheHits > 0,
					"repeat run missed the plan cache")
			}
		}
	}
	return nil
}

// captureSlowestTrace finds the slowest successful traced conformance
// run and, when TracesURL is set, pulls its Chrome export from the
// server's flight recorder into the report. A fetch failure is logged,
// not fatal: the trace may legitimately have been evicted under churn.
func captureSlowestTrace(cfg *DriverConfig, rep *Report) {
	var slow *ConformanceRun
	for i := range rep.Conformance {
		cr := &rep.Conformance[i]
		if cr.Code != "" || cr.TraceID == "" {
			continue
		}
		if slow == nil || cr.ElapsedMS > slow.ElapsedMS {
			slow = cr
		}
	}
	if slow == nil {
		return
	}
	rep.SlowestTrace = &SlowestTrace{
		Query: slow.Query, DOP: slow.DOP, TraceID: slow.TraceID, ElapsedMS: slow.ElapsedMS,
	}
	if cfg.TracesURL == "" {
		return
	}
	url := strings.TrimRight(cfg.TracesURL, "/") + "/" + slow.TraceID + "?format=chrome"
	cl := http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		cfg.logf("slowest trace: fetch %s: %v", url, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cfg.logf("slowest trace: fetch %s: HTTP %d", url, resp.StatusCode)
		return
	}
	var chrome json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		cfg.logf("slowest trace: %s: %v", url, err)
		return
	}
	rep.SlowestTrace.Chrome = chrome
	cfg.logf("slowest trace: %s (%s@dop=%d, %.2fms), chrome export %d bytes",
		slow.TraceID, slow.Query, slow.DOP, slow.ElapsedMS, len(chrome))
}

// assertOK is assert + a usable boolean for gating dependent checks.
func assertOK(assert func(string, bool, string, ...any), name string, ok bool, format string, args ...any) bool {
	assert(name, ok, format, args...)
	return ok
}

// loadAgg accumulates load-phase outcomes across client goroutines.
type loadAgg struct {
	mu        sync.Mutex
	reg       *metrics.Registry
	overall   *metrics.Histogram
	perQuery  map[string]*metrics.Histogram
	counts    map[string]int64
	errors    map[string]int64            // taxonomy code -> count
	qErrors   map[string]map[string]int64 // query -> code -> count
	issued    int64
	completed int64
	planHits  int64
	successes int64
}

func newLoadAgg() *loadAgg {
	reg := metrics.NewRegistry()
	return &loadAgg{
		reg:      reg,
		overall:  reg.HistogramWith("overall", metrics.FineLatencyBuckets),
		perQuery: map[string]*metrics.Histogram{},
		counts:   map[string]int64{},
		errors:   map[string]int64{},
		qErrors:  map[string]map[string]int64{},
	}
}

func (a *loadAgg) record(q *Query, out *Outcome) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.completed++
	a.counts[q.Name]++
	expected := out.Code == q.Expect.Error // "" == "" for success queries
	if expected {
		h := a.perQuery[q.Name]
		if h == nil {
			h = a.reg.HistogramWith("q:"+q.Name, metrics.FineLatencyBuckets)
			a.perQuery[q.Name] = h
		}
		h.Observe(out.Elapsed)
		a.overall.Observe(out.Elapsed)
	}
	if out.Code == "" {
		a.successes++
		a.planHits += out.Stats.PlanCacheHits
		return
	}
	a.errors[out.Code]++
	qe := a.qErrors[q.Name]
	if qe == nil {
		qe = map[string]int64{}
		a.qErrors[q.Name] = qe
	}
	qe[out.Code]++
}

// picker is the seeded weighted query selector with a deterministic
// degree rotation.
type picker struct {
	mu      sync.Mutex
	rng     *rand.Rand
	queries []*Query
	cum     []int
	total   int
	dops    []int
	next    int
}

func newPicker(c *Corpus, seed int64) (*picker, error) {
	p := &picker{rng: rand.New(rand.NewSource(seed)), dops: c.Workload.Dops}
	for _, q := range c.LoadQueries() {
		p.total += q.Weight
		p.queries = append(p.queries, q)
		p.cum = append(p.cum, p.total)
	}
	if p.total == 0 {
		return nil, fmt.Errorf("replay: no queries carry load weight")
	}
	return p, nil
}

func (p *picker) pick() (*Query, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.rng.Intn(p.total)
	i := sort.SearchInts(p.cum, n+1)
	dop := p.dops[p.next%len(p.dops)]
	p.next++
	return p.queries[i], dop
}

// interarrival draws the next open-loop gap from the exponential
// distribution at the configured rate.
func (p *picker) interarrival(rate float64) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Duration(p.rng.ExpFloat64() / rate * float64(time.Second))
}

// runLoad fires the weighted mix at the server for cfg.Duration and
// appends the workload-level assertions.
func runLoad(ctx context.Context, c *Corpus, cfg *DriverConfig, rep *Report) error {
	before, scraped := scrape(cfg.MetricsURL)

	conns := make([]*client.Conn, cfg.Clients)
	for i := range conns {
		cn, err := client.Dial(cfg.Addr)
		if err != nil {
			return fmt.Errorf("replay: dial %s: %w", cfg.Addr, err)
		}
		defer cn.Close()
		conns[i] = cn
	}
	pick, err := newPicker(c, cfg.Seed)
	if err != nil {
		return err
	}
	agg := newLoadAgg()
	cfg.logf("load: mode=%s rate=%g clients=%d duration=%s seed=%d",
		cfg.Mode, cfg.Rate, cfg.Clients, cfg.Duration, cfg.Seed)

	lctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	fire := func(cn *client.Conn, q *Query, dop int) error {
		out, err := RunRemote(lctx, cn, q, dop)
		if err != nil {
			// A transport error racing shutdown at the deadline is expected;
			// mid-run it is a harness failure.
			if lctx.Err() != nil {
				return nil
			}
			return err
		}
		if out.Code == client.CodeCancelled && q.CancelAfterRows == 0 && lctx.Err() != nil {
			return nil // deadline-cancelled tail query, not a workload outcome
		}
		agg.record(q, out)
		return nil
	}

	errCh := make(chan error, cfg.Clients+1)
	if cfg.Mode == ModeOpen {
		var inFlight sync.WaitGroup
	arrivals:
		for i := 0; ; i++ {
			select {
			case <-lctx.Done():
				break arrivals
			case <-time.After(pick.interarrival(cfg.Rate)):
			}
			q, dop := pick.pick()
			cn := conns[i%len(conns)]
			agg.mu.Lock()
			agg.issued++
			agg.mu.Unlock()
			inFlight.Add(1)
			go func() {
				defer inFlight.Done()
				if err := fire(cn, q, dop); err != nil {
					select {
					case errCh <- err:
					default:
					}
				}
			}()
		}
		inFlight.Wait()
	} else {
		for w := 0; w < cfg.Clients; w++ {
			wg.Add(1)
			cn := conns[w]
			go func() {
				defer wg.Done()
				for lctx.Err() == nil {
					q, dop := pick.pick()
					agg.mu.Lock()
					agg.issued++
					agg.mu.Unlock()
					if err := fire(cn, q, dop); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return fmt.Errorf("replay: load phase: %w", err)
	default:
	}

	after, _ := scrape(cfg.MetricsURL)
	buildLoadReport(c, cfg, rep, agg, elapsed, before, after, scraped)
	return nil
}

// buildLoadReport folds the aggregates into the report and appends the
// workload-level assertions from the manifest.
func buildLoadReport(c *Corpus, cfg *DriverConfig, rep *Report, agg *loadAgg,
	elapsed time.Duration, before, after map[string]int64, scraped bool) {

	assert := func(name string, ok bool, format string, args ...any) {
		a := Assertion{Name: name, OK: ok}
		if !ok {
			a.Detail = fmt.Sprintf(format, args...)
			cfg.logf("FAIL %s: %s", name, a.Detail)
		}
		rep.Asserts = append(rep.Asserts, a)
	}

	agg.mu.Lock()
	defer agg.mu.Unlock()
	l := &LoadReport{
		Rate: cfg.Rate, Clients: cfg.Clients, DurationS: elapsed.Seconds(),
		Issued: agg.issued, Completed: agg.completed,
		ThroughputQPS: float64(agg.completed) / elapsed.Seconds(),
		Errors:        agg.errors,
		Overall:       latencySummary(agg.overall),
	}
	if agg.successes > 0 {
		l.PlanCacheHitRatio = float64(agg.planHits) / float64(agg.successes)
	}
	if agg.issued > 0 {
		l.BusyRatio = float64(agg.errors[client.CodeBusy]) / float64(agg.issued)
	}
	names := make([]string, 0, len(agg.counts))
	for n := range agg.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		qs := QueryLoadStats{Query: n, Count: agg.counts[n], Errors: agg.qErrors[n]}
		if h := agg.perQuery[n]; h != nil {
			qs.Latency = latencySummary(h)
		}
		l.PerQuery = append(l.PerQuery, qs)
	}
	if scraped {
		l.Admission = &AdmissionDeltas{
			Queued:   after["server_queries_queued"] - before["server_queries_queued"],
			Rejected: after["server_queries_rejected"] - before["server_queries_rejected"],
		}
	}
	rep.Load = l

	w := c.Workload
	assert("load/completed", agg.completed > 0, "no queries completed")
	if w.MaxBusyRatio > 0 {
		assert("load/busy_ratio", l.BusyRatio <= w.MaxBusyRatio,
			"busy ratio %.3f > max %.3f", l.BusyRatio, w.MaxBusyRatio)
	}
	if w.MinPlanCacheHitRatio > 0 && agg.successes > 0 {
		assert("load/plan_cache_hit_ratio", l.PlanCacheHitRatio >= w.MinPlanCacheHitRatio,
			"plan cache hit ratio %.3f < min %.3f (hits %d / successes %d)",
			l.PlanCacheHitRatio, w.MinPlanCacheHitRatio, agg.planHits, agg.successes)
	}
	if l.Admission != nil {
		if w.MaxQueuedDelta != nil {
			assert("load/admission_queued", l.Admission.Queued <= *w.MaxQueuedDelta,
				"queued delta %d > max %d", l.Admission.Queued, *w.MaxQueuedDelta)
		}
		if w.MaxRejectedDelta != nil {
			assert("load/admission_rejected", l.Admission.Rejected <= *w.MaxRejectedDelta,
				"rejected delta %d > max %d", l.Admission.Rejected, *w.MaxRejectedDelta)
		}
		// Consistency: the server's rejected counter must account for at
		// least every busy fast-reject this driver observed (it is the
		// only client during the phase).
		assert("load/admission_consistency", l.Admission.Rejected >= agg.errors[client.CodeBusy],
			"server rejected counter grew %d but driver saw %d busy rejections",
			l.Admission.Rejected, agg.errors[client.CodeBusy])
	}
}

// scrape fetches the server's metrics registry snapshot; absence is not
// an error (the endpooint is optional), just a reason to skip the
// admission assertions.
func scrape(url string) (map[string]int64, bool) {
	if url == "" {
		return nil, false
	}
	cl := http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var s struct {
		Counters map[string]int64
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, false
	}
	return s.Counters, true
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
