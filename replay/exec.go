package replay

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"gapplydb"
	"gapplydb/client"
	"gapplydb/internal/sql"
	"gapplydb/xmlpub"
)

// Outcome is one execution of a corpus query, local or remote, reduced
// to what the harness compares: the rendered output bytes, the error
// taxonomy code, and the engine's work counters.
type Outcome struct {
	// Rendered is the comparable output: RenderRows for rows queries, the
	// published document for XML queries. nil when the query errored.
	Rendered []byte
	// Rows is the row count (rows kind) or document bytes (xml kind).
	Rows int64
	// Code classifies a failure using the wire taxonomy ("" = success).
	Code string
	// Err is the underlying failure when Code is set.
	Err error
	// Stats carries the engine's work counters (spool, plan cache, …).
	Stats gapplydb.ExecStats
	// Elapsed is the caller-observed wall time for the whole execution,
	// stream drain included.
	Elapsed time.Duration
	// TraceID identifies the execution's server-side trace (zero when
	// untraced). Remote runs populate it from the End/Error frame echo.
	TraceID gapplydb.TraceID
}

// RenderRows renders a result deterministically: a header line with the
// column names, then one tab-separated line per row in result order.
// NULL renders as \N, strings are quoted (so tabs or newlines in data
// cannot break framing), floats use the shortest round-trip form. Byte
// equality of two renderings is exactly result equality, which makes
// the rendering both the golden format and the differential comparator.
func RenderRows(cols []string, rows [][]any) []byte {
	var b bytes.Buffer
	b.WriteString("# columns: ")
	b.WriteString(strings.Join(cols, "\t"))
	b.WriteByte('\n')
	for _, r := range rows {
		for j, v := range r {
			if j > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(renderValue(v))
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

func renderValue(v any) string {
	switch x := v.(type) {
	case nil:
		return `\N`
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return strconv.Quote(x)
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprintf("%#v", v)
	}
}

// effectiveDOP resolves the degree one execution runs at: a query with
// a pinned DOP always uses it; otherwise the caller's choice applies.
func (q *Query) effectiveDOP(dop int) int {
	if q.DOP > 0 {
		return q.DOP
	}
	return dop
}

// RunLocal executes the query embedded (Database.Query) at the given
// degree of parallelism. Cancel-type queries are not locally runnable —
// their whole point is a wire-level cancel mid-stream.
func RunLocal(ctx context.Context, db *gapplydb.Database, q *Query, dop int) (*Outcome, error) {
	return RunLocalOpts(ctx, db, q, dop)
}

// RunLocalOpts is RunLocal with extra query options appended after the
// corpus-derived ones. The row-vs-batch engine differential uses it to
// pin the execution engine (gapplydb.WithRowExecution) while keeping
// the corpus's own DOP/timeout/budget semantics intact.
func RunLocalOpts(ctx context.Context, db *gapplydb.Database, q *Query, dop int, extra ...gapplydb.QueryOption) (*Outcome, error) {
	if q.CancelAfterRows > 0 {
		return nil, fmt.Errorf("replay: %s: cancel-after-rows queries only run remotely", q.Name)
	}
	var opts []gapplydb.QueryOption
	if d := q.effectiveDOP(dop); d > 0 {
		opts = append(opts, gapplydb.WithDOP(d))
	}
	if q.TimeoutMS > 0 {
		opts = append(opts, gapplydb.WithTimeout(q.Timeout()))
	}
	if q.MaxOutputRows > 0 {
		opts = append(opts, gapplydb.WithBudget(gapplydb.Budget{MaxOutputRows: q.MaxOutputRows}))
	}
	if q.Partition != "" {
		opts = append(opts, gapplydb.WithPartition(q.Partition))
	}
	opts = append(opts, extra...)
	start := time.Now()
	res, err := db.QueryContext(ctx, q.SQL, opts...)
	if err != nil {
		return &Outcome{Code: localCode(err), Err: err, Elapsed: time.Since(start)}, nil
	}
	out := &Outcome{Stats: res.Stats, Elapsed: time.Since(start)}
	if q.Kind == KindXML {
		var doc bytes.Buffer
		if err := xmlpub.TagAll(q.TagPlan, res.Rows, &doc); err != nil {
			return nil, fmt.Errorf("replay: %s: tagging: %w", q.Name, err)
		}
		out.Rendered = doc.Bytes()
		out.Rows = int64(doc.Len())
		return out, nil
	}
	out.Rendered = RenderRows(res.Columns, res.Rows)
	out.Rows = int64(len(res.Rows))
	return out, nil
}

// RunRemote executes the query over the wire against a gapplyd
// connection at the given degree of parallelism, honoring the query's
// timeout/budget options and its cancel-after-rows protocol.
func RunRemote(ctx context.Context, conn *client.Conn, q *Query, dop int) (*Outcome, error) {
	return runRemote(ctx, conn, q, dop, nil)
}

// RunRemoteTraced is RunRemote with a client-issued trace ID: the
// server traces the whole request path under id and echoes it on the
// terminating frame, which lands in Outcome.TraceID — so a conformance
// run can assert the wire round-trip and then pull the full trace from
// the server's /debug/traces.
func RunRemoteTraced(ctx context.Context, conn *client.Conn, q *Query, dop int, id gapplydb.TraceID) (*Outcome, error) {
	return runRemote(ctx, conn, q, dop, []client.QueryOption{client.WithTraceID(id)})
}

func runRemote(ctx context.Context, conn *client.Conn, q *Query, dop int, opts []client.QueryOption) (*Outcome, error) {
	if d := q.effectiveDOP(dop); d > 0 {
		opts = append(opts, client.WithDOP(d))
	}
	if q.TimeoutMS > 0 {
		opts = append(opts, client.WithTimeout(q.Timeout()))
	}
	if q.MaxOutputRows > 0 {
		opts = append(opts, client.WithMaxOutputRows(q.MaxOutputRows))
	}

	start := time.Now()
	if q.Kind == KindXML {
		var doc bytes.Buffer
		st, err := conn.QueryXML(ctx, q.SQL, q.TagPlan, &doc, opts...)
		if err != nil {
			return remoteFailure(err, start)
		}
		return &Outcome{
			Rendered: doc.Bytes(), Rows: st.Rows, Stats: st.Exec,
			Elapsed: time.Since(start), TraceID: st.TraceID,
		}, nil
	}

	qctx := ctx
	var cancel context.CancelFunc
	if q.CancelAfterRows > 0 {
		qctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	rows, err := conn.Query(qctx, q.SQL, opts...)
	if err != nil {
		return remoteFailure(err, start)
	}
	var got [][]any
	var n int64
	for {
		row, ok, err := rows.Next()
		if err != nil {
			rows.Close()
			return remoteFailure(err, start)
		}
		if !ok {
			break
		}
		n++
		if q.CancelAfterRows > 0 {
			// Reading past the cancel point only drains in-flight frames;
			// don't accumulate them.
			if n == q.CancelAfterRows {
				cancel()
			}
			continue
		}
		got = append(got, row)
	}
	out := &Outcome{Rows: n, Stats: rows.Stats().Exec, Elapsed: time.Since(start), TraceID: rows.Stats().TraceID}
	if q.CancelAfterRows == 0 {
		out.Rendered = RenderRows(rows.Columns, got)
	}
	return out, nil
}

// remoteFailure folds a remote error into an Outcome with its taxonomy
// code. Transport-level failures (connection death) are returned as
// hard errors — they are harness failures, not query outcomes.
func remoteFailure(err error, start time.Time) (*Outcome, error) {
	var se *client.ServerError
	if errors.As(err, &se) {
		return &Outcome{Code: se.Code, Err: err, Elapsed: time.Since(start), TraceID: se.TraceID}, nil
	}
	return nil, err
}

// localCode maps an embedded-execution error onto the wire taxonomy,
// mirroring the server's classification so local and remote outcomes
// compare directly.
func localCode(err error) string {
	var re *gapplydb.ResourceError
	var pe *sql.ParseError
	switch {
	case errors.Is(err, context.Canceled):
		return client.CodeCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return client.CodeTimeout
	case errors.As(err, &re):
		return client.CodeResource
	case errors.Is(err, gapplydb.ErrDatabaseClosed):
		return client.CodeShutdown
	case errors.As(err, &pe):
		return client.CodeParse
	default:
		return client.CodeInternal
	}
}

// DiffRendered compares two renderings byte-exactly and reports the
// first differing line with context when they diverge.
func DiffRendered(got, want []byte) error {
	if bytes.Equal(got, want) {
		return nil
	}
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			return fmt.Errorf("outputs differ at line %d:\n  got:  %.120s\n  want: %.120s\n(got %d lines/%d bytes, want %d lines/%d bytes)",
				i+1, g, w, len(gl), len(got), len(wl), len(want))
		}
	}
	return fmt.Errorf("outputs differ (got %d bytes, want %d bytes)", len(got), len(want))
}
