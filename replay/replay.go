// Package replay is the server-scale regression harness: a checked-in
// corpus of publishing queries with golden row/XML outputs and declared
// per-query expectations, plus a driver that fires the corpus at a live
// gapplyd — once sequentially for conformance (goldens, error taxonomy,
// spool and plan-cache counters), then as a mixed workload under
// arrival-rate control (open-loop Poisson or closed-loop clients),
// reporting latency percentiles, throughput, and an error taxonomy.
//
// The corpus lives in a directory:
//
//	corpus/
//	  manifest.json          query list, expectations, workload bounds
//	  sql/<name>.sql         one statement per file
//	  tagplan/<name>.json    xmlpub tag plan for XML-mode queries
//	  golden/<name>.rows     golden rendered rows
//	  golden/<name>.xml      golden published document
//
// Goldens are regenerated with UpdateGoldens (cmd/bench -replay DIR
// -update); regeneration is deterministic, so a second pass is a no-op
// — a property the test suite asserts.
package replay

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"gapplydb/xmlpub"
)

// Kinds of corpus queries.
const (
	KindRows = "rows" // result compared as rendered rows
	KindXML  = "xml"  // result compared as the published XML document
)

// Expect declares what one corpus query's execution must look like.
// Absent optional fields are unchecked.
type Expect struct {
	// Golden requires the output to match the checked-in golden file.
	Golden bool `json:"golden"`
	// Error is the wire error code the query must fail with ("" = the
	// query must succeed). Error-expecting queries have no goldens.
	Error string `json:"error,omitempty"`
	// MinRows is a lower bound on the row count (rows kind only).
	MinRows int64 `json:"min_rows,omitempty"`
	// SpoolBuilds pins the invariant-subtree spool's materialization
	// count exactly; SpoolHitsMin bounds its replay count from below.
	SpoolBuilds  *int64 `json:"spool_builds,omitempty"`
	SpoolHitsMin *int64 `json:"spool_hits_min,omitempty"`
	// PlanCacheHitOnRepeat requires the second consecutive execution to
	// be served from the statement plan cache.
	PlanCacheHitOnRepeat bool `json:"plan_cache_hit_on_repeat,omitempty"`
}

// Query is one corpus entry.
type Query struct {
	// Name identifies the query; it is also the file stem, so it must be
	// lowercase [a-z0-9_]+.
	Name string `json:"name"`
	// Kind is "rows" or "xml".
	Kind string `json:"kind"`
	// Weight is the query's share of the mixed load phase; 0 keeps it
	// conformance-only.
	Weight int `json:"weight,omitempty"`
	// DOP pins the query to one degree of parallelism; 0 runs it at every
	// degree in the driver's matrix.
	DOP int `json:"dop,omitempty"`
	// TimeoutMS, when set, runs the query under a wall-clock budget —
	// pair with Expect.Error "timeout" for a deterministic kill.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxOutputRows, when set, caps the result under the resource budget
	// — pair with Expect.Error "resource".
	MaxOutputRows int64 `json:"max_output_rows,omitempty"`
	// CancelAfterRows, when set, makes the driver cancel the query after
	// reading that many rows — pair with Expect.Error "cancelled". The
	// statement must produce far more output than the transport can
	// buffer, or the cancel races stream completion.
	CancelAfterRows int64 `json:"cancel_after_rows,omitempty"`
	// Partition pins the GApply partitioning strategy ("hash" or "sort")
	// for local executions. The wire protocol carries no partition knob,
	// so remote runs use the planner's default — a corpus query that sets
	// this must be partition-invariant (byte-identical output under either
	// strategy), which the conformance matrix's local-vs-remote comparison
	// then enforces rather than assumes.
	Partition string `json:"partition,omitempty"`

	Expect Expect `json:"expect"`

	// SQL and TagPlan are loaded from the corpus files.
	SQL     string          `json:"-"`
	TagPlan *xmlpub.TagPlan `json:"-"`
}

// Workload bounds the mixed load phase as a whole.
type Workload struct {
	// Dops is the degree-of-parallelism mix arrivals rotate through
	// (default [1, 8]); also the conformance matrix.
	Dops []int `json:"dops,omitempty"`
	// MaxBusyRatio bounds admission fast-rejections over issued queries
	// (shedding is expected under open-loop overload, but not this much).
	MaxBusyRatio float64 `json:"max_busy_ratio"`
	// MinPlanCacheHitRatio bounds the statement-plan-cache hit ratio over
	// the load phase's successful queries from below: a replayed workload
	// of fixed statements must be almost entirely cache-served.
	MinPlanCacheHitRatio float64 `json:"min_plan_cache_hit_ratio"`
	// MaxQueuedDelta / MaxRejectedDelta bound the server's admission
	// queued/rejected counter growth across the load phase; they are
	// asserted only when the driver can scrape the server's /metrics
	// endpoint. nil = unchecked.
	MaxQueuedDelta   *int64 `json:"max_queued_delta,omitempty"`
	MaxRejectedDelta *int64 `json:"max_rejected_delta,omitempty"`
}

// Manifest is the corpus description checked in as manifest.json.
type Manifest struct {
	Version int `json:"version"`
	// ScaleFactor is the TPC-H scale the goldens were generated at; the
	// driver verifies the server holds the same data before asserting.
	ScaleFactor float64 `json:"scale_factor"`
	// PartsuppRows is the expected `select count(*) from partsupp` — the
	// cheap guard that server data matches the goldens.
	PartsuppRows int64    `json:"partsupp_rows"`
	Queries      []*Query `json:"queries"`
	Workload     Workload `json:"workload"`
}

// Corpus is a loaded, validated corpus.
type Corpus struct {
	Dir string
	Manifest
}

var nameRE = regexp.MustCompile(`^[a-z0-9_]+$`)

// Load reads and validates a corpus directory: the manifest, every
// query's SQL, and the tag plans of XML queries. Goldens are loaded
// lazily (they may legitimately be absent before the first -update).
func Load(dir string) (*Corpus, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	c := &Corpus{Dir: dir}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c.Manifest); err != nil {
		return nil, fmt.Errorf("replay: manifest.json: %w", err)
	}
	if c.Version != 1 {
		return nil, fmt.Errorf("replay: manifest version %d unsupported (want 1)", c.Version)
	}
	if c.ScaleFactor <= 0 || c.PartsuppRows <= 0 {
		return nil, fmt.Errorf("replay: manifest must declare scale_factor and partsupp_rows")
	}
	if len(c.Queries) == 0 {
		return nil, fmt.Errorf("replay: manifest has no queries")
	}
	seen := map[string]bool{}
	for _, q := range c.Queries {
		if !nameRE.MatchString(q.Name) {
			return nil, fmt.Errorf("replay: bad query name %q (want [a-z0-9_]+)", q.Name)
		}
		if seen[q.Name] {
			return nil, fmt.Errorf("replay: duplicate query name %q", q.Name)
		}
		seen[q.Name] = true
		if q.Kind != KindRows && q.Kind != KindXML {
			return nil, fmt.Errorf("replay: %s: bad kind %q", q.Name, q.Kind)
		}
		if q.Expect.Error != "" && q.Expect.Golden {
			return nil, fmt.Errorf("replay: %s: an error-expecting query cannot also expect a golden", q.Name)
		}
		if q.Weight < 0 {
			return nil, fmt.Errorf("replay: %s: negative weight", q.Name)
		}
		if q.Partition != "" && q.Partition != "hash" && q.Partition != "sort" {
			return nil, fmt.Errorf("replay: %s: bad partition %q (want hash or sort)", q.Name, q.Partition)
		}
		sqlBytes, err := os.ReadFile(filepath.Join(dir, "sql", q.Name+".sql"))
		if err != nil {
			return nil, fmt.Errorf("replay: %s: %w", q.Name, err)
		}
		q.SQL = strings.TrimSpace(string(sqlBytes))
		if q.SQL == "" {
			return nil, fmt.Errorf("replay: %s: empty sql file", q.Name)
		}
		if q.Kind == KindXML {
			planBytes, err := os.ReadFile(filepath.Join(dir, "tagplan", q.Name+".json"))
			if err != nil {
				return nil, fmt.Errorf("replay: %s: %w", q.Name, err)
			}
			q.TagPlan = new(xmlpub.TagPlan)
			if err := json.Unmarshal(planBytes, q.TagPlan); err != nil {
				return nil, fmt.Errorf("replay: %s: tag plan: %w", q.Name, err)
			}
		}
	}
	if len(c.Workload.Dops) == 0 {
		c.Workload.Dops = []int{1, 8}
	}
	for _, d := range c.Workload.Dops {
		if d < 1 {
			return nil, fmt.Errorf("replay: workload dop %d out of range", d)
		}
	}
	return c, nil
}

// Timeout returns the query's configured wall-clock budget.
func (q *Query) Timeout() time.Duration { return time.Duration(q.TimeoutMS) * time.Millisecond }

// GoldenPath returns where the query's golden lives under the corpus.
func (c *Corpus) GoldenPath(q *Query) string {
	ext := ".rows"
	if q.Kind == KindXML {
		ext = ".xml"
	}
	return filepath.Join(c.Dir, "golden", q.Name+ext)
}

// Golden reads the query's checked-in golden bytes.
func (c *Corpus) Golden(q *Query) ([]byte, error) {
	b, err := os.ReadFile(c.GoldenPath(q))
	if err != nil {
		return nil, fmt.Errorf("replay: %s: missing golden (regenerate with bench -replay %s -update): %w",
			q.Name, c.Dir, err)
	}
	return b, nil
}

// LoadQueries returns the subset of corpus queries carrying positive
// weight — the mixed-workload population.
func (c *Corpus) LoadQueries() []*Query {
	var out []*Query
	for _, q := range c.Queries {
		if q.Weight > 0 {
			out = append(out, q)
		}
	}
	return out
}
