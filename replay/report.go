package replay

import (
	"encoding/json"
	"fmt"
	"os"

	"gapplydb/internal/metrics"
)

// Report is the replay run's full result, serialized as BENCH_6.json.
type Report struct {
	Corpus      string  `json:"corpus"`
	ScaleFactor float64 `json:"scale_factor"`
	Mode        string  `json:"mode"`
	Seed        int64   `json:"seed"`
	Started     string  `json:"started"`
	// Passed is true when every assertion held.
	Passed bool `json:"passed"`

	Conformance []ConformanceRun `json:"conformance"`
	Load        *LoadReport      `json:"load,omitempty"`
	Asserts     []Assertion      `json:"asserts"`

	// SlowestTrace is the slowest successful conformance run's full
	// server-side trace, fetched from /debug/traces when the driver runs
	// with tracing on and a TracesURL — the flight-recorder artifact CI
	// uploads so a slow conformance pass ships its own timeline.
	SlowestTrace *SlowestTrace `json:"slowest_trace,omitempty"`
}

// SlowestTrace names the worst conformance run and carries its Chrome
// trace_event export (loadable in chrome://tracing or Perfetto).
type SlowestTrace struct {
	Query     string          `json:"query"`
	DOP       int             `json:"dop"`
	TraceID   string          `json:"trace_id"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Chrome    json.RawMessage `json:"chrome,omitempty"`
}

// WriteChrome persists the slowest trace's Chrome JSON on its own (the
// TRACE_*.json artifact); a nil receiver or absent export is an error.
func (s *SlowestTrace) WriteChrome(path string) error {
	if s == nil || len(s.Chrome) == 0 {
		return fmt.Errorf("replay: no chrome trace captured (need -trace and -traces-http against a reachable server)")
	}
	return os.WriteFile(path, append([]byte(s.Chrome), '\n'), 0o644)
}

// ConformanceRun is one execution of the sequential conformance pass.
type ConformanceRun struct {
	Query        string  `json:"query"`
	DOP          int     `json:"dop"`
	Run          int     `json:"run"`
	Code         string  `json:"code,omitempty"`
	Rows         int64   `json:"rows"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	SpoolBuilds  int64   `json:"spool_builds,omitempty"`
	SpoolHits    int64   `json:"spool_hits,omitempty"`
	PlanCacheHit bool    `json:"plan_cache_hit"`
	TraceID      string  `json:"trace_id,omitempty"`
}

// Assertion is one checked expectation, from the manifest or built in.
type Assertion struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// LoadReport summarizes the mixed-workload phase.
type LoadReport struct {
	Rate              float64          `json:"rate,omitempty"`
	Clients           int              `json:"clients"`
	DurationS         float64          `json:"duration_s"`
	Issued            int64            `json:"issued"`
	Completed         int64            `json:"completed"`
	ThroughputQPS     float64          `json:"throughput_qps"`
	BusyRatio         float64          `json:"busy_ratio"`
	PlanCacheHitRatio float64          `json:"plan_cache_hit_ratio"`
	Errors            map[string]int64 `json:"errors"`
	Overall           LatencySummary   `json:"overall"`
	PerQuery          []QueryLoadStats `json:"per_query"`
	Admission         *AdmissionDeltas `json:"admission,omitempty"`
}

// QueryLoadStats is one corpus query's share of the load phase.
type QueryLoadStats struct {
	Query   string           `json:"query"`
	Count   int64            `json:"count"`
	Latency LatencySummary   `json:"latency"`
	Errors  map[string]int64 `json:"errors,omitempty"`
}

// LatencySummary is the percentile digest of one latency histogram.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// AdmissionDeltas is the growth of the server's admission counters
// across the load phase (present only when /metrics was scrapeable).
type AdmissionDeltas struct {
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
}

// latencySummary digests a histogram into the report form.
func latencySummary(h *metrics.Histogram) LatencySummary {
	s := h.Snapshot()
	return LatencySummary{
		Count:  s.Count,
		MeanMS: ms(s.Mean()),
		P50MS:  ms(s.Quantile(0.50)),
		P95MS:  ms(s.Quantile(0.95)),
		P99MS:  ms(s.Quantile(0.99)),
		MaxMS:  ms(s.Max),
	}
}

// WriteJSON persists the report, pretty-printed, creating the file.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
