package replay

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCorpus materializes a minimal corpus in a temp dir from a
// manifest string and sql file map.
func writeCorpus(t *testing.T, manifest string, sqls map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "sql"), 0o755); err != nil {
		t.Fatal(err)
	}
	for name, sql := range sqls {
		if err := os.WriteFile(filepath.Join(dir, "sql", name+".sql"), []byte(sql), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const validManifest = `{
  "version": 1, "scale_factor": 0.001, "partsupp_rows": 800,
  "queries": [
    {"name": "a", "kind": "rows", "weight": 1, "expect": {"golden": true}}
  ],
  "workload": {"max_busy_ratio": 0.9, "min_plan_cache_hit_ratio": 0.5}
}`

func TestLoadValid(t *testing.T) {
	dir := writeCorpus(t, validManifest, map[string]string{"a": "select 1\n"})
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Queries) != 1 || c.Queries[0].SQL != "select 1" {
		t.Fatalf("unexpected corpus: %+v", c.Queries)
	}
	// Dop matrix defaults when the manifest leaves it out.
	if len(c.Workload.Dops) != 2 || c.Workload.Dops[0] != 1 || c.Workload.Dops[1] != 8 {
		t.Fatalf("default dops = %v, want [1 8]", c.Workload.Dops)
	}
	if got := c.GoldenPath(c.Queries[0]); filepath.Base(got) != "a.rows" {
		t.Fatalf("golden path = %s", got)
	}
}

func TestLoadRejects(t *testing.T) {
	cases := []struct {
		name     string
		manifest string
		sqls     map[string]string
		want     string
	}{
		{
			name: "bad version",
			manifest: `{"version": 2, "scale_factor": 0.001, "partsupp_rows": 800,
				"queries": [{"name": "a", "kind": "rows", "expect": {}}], "workload": {"max_busy_ratio": 1, "min_plan_cache_hit_ratio": 0}}`,
			sqls: map[string]string{"a": "select 1"},
			want: "version",
		},
		{
			name: "bad kind",
			manifest: `{"version": 1, "scale_factor": 0.001, "partsupp_rows": 800,
				"queries": [{"name": "a", "kind": "csv", "expect": {}}], "workload": {"max_busy_ratio": 1, "min_plan_cache_hit_ratio": 0}}`,
			sqls: map[string]string{"a": "select 1"},
			want: "bad kind",
		},
		{
			name: "duplicate name",
			manifest: `{"version": 1, "scale_factor": 0.001, "partsupp_rows": 800,
				"queries": [{"name": "a", "kind": "rows", "expect": {}}, {"name": "a", "kind": "rows", "expect": {}}], "workload": {"max_busy_ratio": 1, "min_plan_cache_hit_ratio": 0}}`,
			sqls: map[string]string{"a": "select 1"},
			want: "duplicate",
		},
		{
			name: "uppercase name",
			manifest: `{"version": 1, "scale_factor": 0.001, "partsupp_rows": 800,
				"queries": [{"name": "Bad", "kind": "rows", "expect": {}}], "workload": {"max_busy_ratio": 1, "min_plan_cache_hit_ratio": 0}}`,
			sqls: map[string]string{"Bad": "select 1"},
			want: "bad query name",
		},
		{
			name: "error plus golden",
			manifest: `{"version": 1, "scale_factor": 0.001, "partsupp_rows": 800,
				"queries": [{"name": "a", "kind": "rows", "expect": {"golden": true, "error": "timeout"}}], "workload": {"max_busy_ratio": 1, "min_plan_cache_hit_ratio": 0}}`,
			sqls: map[string]string{"a": "select 1"},
			want: "cannot also expect a golden",
		},
		{
			name: "missing sql file",
			manifest: `{"version": 1, "scale_factor": 0.001, "partsupp_rows": 800,
				"queries": [{"name": "a", "kind": "rows", "expect": {}}], "workload": {"max_busy_ratio": 1, "min_plan_cache_hit_ratio": 0}}`,
			sqls: map[string]string{},
			want: "a.sql",
		},
		{
			name: "unknown manifest field",
			manifest: `{"version": 1, "scale_factor": 0.001, "partsupp_rows": 800, "bogus": 1,
				"queries": [{"name": "a", "kind": "rows", "expect": {}}], "workload": {"max_busy_ratio": 1, "min_plan_cache_hit_ratio": 0}}`,
			sqls: map[string]string{"a": "select 1"},
			want: "bogus",
		},
		{
			name: "missing tag plan",
			manifest: `{"version": 1, "scale_factor": 0.001, "partsupp_rows": 800,
				"queries": [{"name": "a", "kind": "xml", "expect": {}}], "workload": {"max_busy_ratio": 1, "min_plan_cache_hit_ratio": 0}}`,
			sqls: map[string]string{"a": "select 1"},
			want: "a.json",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeCorpus(t, tc.manifest, tc.sqls)
			_, err := Load(dir)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestRenderRows(t *testing.T) {
	got := string(RenderRows(
		[]string{"k", "v"},
		[][]any{
			{int64(1), "plain"},
			{nil, "tab\there"},
			{3.5, true},
		},
	))
	want := "# columns: k\tv\n" +
		"1\t\"plain\"\n" +
		"\\N\t\"tab\\there\"\n" +
		"3.5\ttrue\n"
	if got != want {
		t.Fatalf("RenderRows:\ngot  %q\nwant %q", got, want)
	}
}

func TestDiffRendered(t *testing.T) {
	if err := DiffRendered([]byte("a\nb\n"), []byte("a\nb\n")); err != nil {
		t.Fatalf("equal inputs: %v", err)
	}
	err := DiffRendered([]byte("a\nX\n"), []byte("a\nb\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("diff = %v, want line-2 report", err)
	}
}

func TestLoadQueriesWeightFilter(t *testing.T) {
	c := &Corpus{Manifest: Manifest{Queries: []*Query{
		{Name: "hot", Weight: 3},
		{Name: "conformance_only"},
	}}}
	lq := c.LoadQueries()
	if len(lq) != 1 || lq[0].Name != "hot" {
		t.Fatalf("LoadQueries = %+v", lq)
	}
}
