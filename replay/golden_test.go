package replay

import (
	"bytes"
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gapplydb"
)

// corpusDir is the checked-in corpus relative to this package.
const corpusDir = "../testdata/corpus"

var (
	goldenOnce sync.Once
	goldenDB   *gapplydb.Database
)

func goldenDatabase(t *testing.T) *gapplydb.Database {
	t.Helper()
	goldenOnce.Do(func() {
		c, err := Load(corpusDir)
		if err != nil {
			panic(err)
		}
		db, err := gapplydb.OpenTPCH(c.ScaleFactor)
		if err != nil {
			panic(err)
		}
		goldenDB = db
	})
	return goldenDB
}

// copyCorpus clones the checked-in corpus into a temp dir so golden
// regeneration can run without touching the repository.
func copyCorpus(t *testing.T, withGoldens bool) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(corpusDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(corpusDir, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !withGoldens && filepath.Dir(rel) == "golden" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestUpdateGoldensDeterministic is the -update contract: regenerating
// from scratch writes every golden, and a second pass over the result
// changes nothing.
func TestUpdateGoldensDeterministic(t *testing.T) {
	dir := copyCorpus(t, false)
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := goldenDatabase(t)
	ctx := context.Background()

	first, err := UpdateGoldens(ctx, db, c)
	if err != nil {
		t.Fatal(err)
	}
	wantGoldens := 0
	for _, q := range c.Queries {
		if q.Expect.Error == "" {
			wantGoldens++
		}
	}
	if len(first) != wantGoldens {
		t.Fatalf("first pass wrote %d goldens (%v), want %d", len(first), first, wantGoldens)
	}
	second, err := UpdateGoldens(ctx, db, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 0 {
		t.Fatalf("second pass changed %v, want no-op", second)
	}
}

// TestCheckedInGoldensFresh regenerates into a clone and verifies the
// repository's goldens are byte-identical — i.e. nobody changed the
// engine (or the corpus) without rerunning -update.
func TestCheckedInGoldensFresh(t *testing.T) {
	dir := copyCorpus(t, true)
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := UpdateGoldens(context.Background(), goldenDatabase(t), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("checked-in goldens are stale: %v (regenerate with bench -replay testdata/corpus -update)", changed)
	}
	// And the clone really matches the originals byte for byte.
	for _, q := range c.Queries {
		if q.Expect.Error != "" {
			continue
		}
		got, err := os.ReadFile(c.GoldenPath(q))
		if err != nil {
			t.Fatal(err)
		}
		orig := &Corpus{Dir: corpusDir, Manifest: c.Manifest}
		want, err := os.ReadFile(orig.GoldenPath(q))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: regenerated golden differs from checked-in", q.Name)
		}
	}
}

// TestUpdateGoldensRemovesStale checks an error-expecting query's
// leftover golden is deleted on regeneration.
func TestUpdateGoldensRemovesStale(t *testing.T) {
	dir := copyCorpus(t, true)
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	var errQ *Query
	for _, q := range c.Queries {
		if q.Expect.Error != "" {
			errQ = q
			break
		}
	}
	if errQ == nil {
		t.Skip("corpus has no error-expecting query")
	}
	stale := c.GoldenPath(errQ)
	if err := os.WriteFile(stale, []byte("stale\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	changed, err := UpdateGoldens(context.Background(), goldenDatabase(t), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != filepath.Base(stale) {
		t.Fatalf("changed = %v, want [%s]", changed, filepath.Base(stale))
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale golden still present: %v", err)
	}
}

// TestCheckDataMismatch pins the guard's failure mode: a server loaded
// at the wrong scale factor must fail with the actionable message, not
// a golden diff.
func TestCheckDataMismatch(t *testing.T) {
	c := &Corpus{Manifest: Manifest{ScaleFactor: 0.001, PartsuppRows: 800}}
	if err := c.CheckData([][]any{{int64(800)}}); err != nil {
		t.Fatalf("matching data: %v", err)
	}
	err := c.CheckData([][]any{{int64(8000)}})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("-sf 0.001")) {
		t.Fatalf("err = %v, want scale-factor advice", err)
	}
}
