package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"gapplydb/client"
	"gapplydb/internal/server"
	"gapplydb/internal/wire"
)

func TestPoolGetPutReuse(t *testing.T) {
	srv := startErrServer(t, server.Config{})
	p := client.NewPool(client.PoolConfig{Addr: srv.Addr().String(), Size: 2})
	defer p.Close()

	ctx := context.Background()
	c1, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	p.Put(c1)
	c2, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Error("idle connection not reused")
	}
	p.Put(c2)

	st := p.Stats()
	if st.Dials != 1 || st.Idle != 1 || st.InUse != 0 {
		t.Errorf("stats: %+v", st)
	}
	if !p.Healthy() {
		t.Error("pool with live idle connection reports unhealthy")
	}
}

func TestPoolBlocksAtSize(t *testing.T) {
	srv := startErrServer(t, server.Config{})
	p := client.NewPool(client.PoolConfig{Addr: srv.Addr().String(), Size: 1})
	defer p.Close()

	c, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := p.Get(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second Get on size-1 pool: %v", err)
	}
	p.Put(c)
	c2, err := p.Get(context.Background())
	if err != nil {
		t.Fatalf("Get after Put: %v", err)
	}
	p.Put(c2)
}

func TestPoolRedialBackoff(t *testing.T) {
	// No server behind this address: every dial fails.
	p := client.NewPool(client.PoolConfig{
		Addr:        "127.0.0.1:1", // reserved port, nothing listens
		Size:        1,
		DialTimeout: 200 * time.Millisecond,
		BackoffMin:  50 * time.Millisecond,
		BackoffMax:  time.Second,
	})
	defer p.Close()

	ctx := context.Background()
	if _, err := p.Get(ctx); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	// Inside the backoff window the pool fast-fails with a typed error
	// instead of dialing again.
	var be *client.BackoffError
	if _, err := p.Get(ctx); !errors.As(err, &be) {
		t.Fatalf("want BackoffError inside window, got %v", err)
	}
	if p.Healthy() {
		t.Error("pool in backoff reports healthy")
	}
	st := p.Stats()
	if st.Dials != 1 || st.DialFailures != 1 {
		t.Errorf("stats after backoff fast-fail: %+v", st)
	}
	// After the window passes the pool dials again (and fails again,
	// doubling the window).
	time.Sleep(60 * time.Millisecond)
	if _, err := p.Get(ctx); errors.As(err, &be) {
		t.Fatalf("backoff window did not expire: %v", err)
	}
	if st := p.Stats(); st.Dials != 2 {
		t.Errorf("expected a second dial attempt: %+v", st)
	}
}

func TestPoolDiscardsDeadConnection(t *testing.T) {
	srv := startErrServer(t, server.Config{})
	p := client.NewPool(client.PoolConfig{Addr: srv.Addr().String(), Size: 1})
	defer p.Close()

	c, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c.Close() // simulate the peer dying while held
	p.Put(c)  // Put must notice and not pool the corpse

	c2, err := p.Get(context.Background())
	if err != nil {
		t.Fatalf("Get after dead Put: %v", err)
	}
	if c2 == c {
		t.Error("dead connection handed back out")
	}
	if err := c2.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Put(c2)
	if st := p.Stats(); st.Dials != 2 {
		t.Errorf("expected redial after dead connection: %+v", st)
	}
}

func TestPoolClose(t *testing.T) {
	srv := startErrServer(t, server.Config{})
	p := client.NewPool(client.PoolConfig{Addr: srv.Addr().String(), Size: 2})
	c, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.Put(c)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := p.Get(context.Background()); !errors.Is(err, client.ErrPoolClosed) {
		t.Fatalf("Get after Close: %v", err)
	}
	if p.Healthy() {
		t.Error("closed pool reports healthy")
	}
}

func TestPoolDialOptionsApply(t *testing.T) {
	srv := startErrServer(t, server.Config{})
	p := client.NewPool(client.PoolConfig{
		Addr:        srv.Addr().String(),
		Size:        1,
		DialOptions: []client.DialOption{client.WithMaxFrame(wire.MinFrame)},
	})
	defer p.Close()
	c, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxFrame() != wire.MinFrame {
		t.Errorf("negotiated frame %d, want %d", c.MaxFrame(), wire.MinFrame)
	}
	p.Put(c)
}
