// Package client is the Go client for gapplyd, the engine's network
// server. A Conn multiplexes any number of concurrent queries over one
// TCP connection: rows stream back in batches through a Rows iterator,
// XML documents stream through QueryXML, and cancelling the context of
// any call sends a wire-level cancel that stops the query server-side
// through the engine's context machinery.
//
// Remote results are byte-identical to embedded execution: the wire
// format carries values in the exact Go representations Result.Rows
// uses, so a remote Rows yields what Database.Query would have.
//
//	conn, err := client.Dial("localhost:7744")
//	rows, err := conn.Query(ctx, "select count(*) from part")
//	for {
//		row, ok, err := rows.Next()
//		...
//	}
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gapplydb"
	"gapplydb/internal/wire"
	"gapplydb/xmlpub"
)

// Error codes a ServerError may carry (mirroring the wire protocol).
const (
	CodeParse     = "parse"
	CodeResource  = "resource"
	CodeCancelled = "cancelled"
	CodeTimeout   = "timeout"
	CodeBusy      = "busy"
	CodeShutdown  = "shutdown"
	CodeSession   = "session-limit"
	CodeProtocol  = "protocol"
	CodeInternal  = "internal"
)

// ServerError is a failure reported by the server for one query.
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) hold for the cancelled/timeout codes, so
// remote and embedded errors satisfy the same checks.
type ServerError struct {
	Code    string
	Message string
	// TraceID identifies the failed query's trace when it was traced —
	// the error's full timeline is retrievable from the server's flight
	// recorder even though the query never produced rows.
	TraceID gapplydb.TraceID
}

func (e *ServerError) Error() string { return fmt.Sprintf("gapplyd: %s (%s)", e.Message, e.Code) }

// Is maps the cancellation taxonomy onto the context sentinels.
func (e *ServerError) Is(target error) bool {
	switch target {
	case context.Canceled:
		return e.Code == CodeCancelled
	case context.DeadlineExceeded:
		return e.Code == CodeTimeout
	}
	return false
}

// ErrConnClosed reports use of a connection that is closed or has
// failed; pending and future calls all return it (possibly wrapped
// around the underlying transport error).
var ErrConnClosed = errors.New("client: connection closed")

// queryOpts is the per-query option accumulator.
type queryOpts struct {
	w     wire.QueryOptions
	trace gapplydb.TraceID
}

// QueryOption tunes one remote query.
type QueryOption func(*queryOpts)

// WithTimeout sets the query's wall-clock budget (enforced server-side
// through the engine's deadline machinery; it overrides any session
// timeout set via Set).
func WithTimeout(d time.Duration) QueryOption {
	return func(o *queryOpts) { o.w.Timeout = d }
}

// WithMaxOutputRows caps the rows the query may return.
func WithMaxOutputRows(n int64) QueryOption {
	return func(o *queryOpts) { o.w.MaxOutputRows = n }
}

// WithMaxPartitionBytes caps GApply's materialized partition bytes.
func WithMaxPartitionBytes(n int64) QueryOption {
	return func(o *queryOpts) { o.w.MaxPartitionBytes = n }
}

// WithDOP caps GApply's parallel degree for the query. n >= 1 sets the
// degree (1 = serial); n <= 0 explicitly requests the engine default,
// overriding any session-level dop.
func WithDOP(n int) QueryOption {
	return func(o *queryOpts) {
		if n <= 0 {
			o.w.DOP = -1
		} else {
			o.w.DOP = int32(n)
		}
	}
}

// WithTraceID attaches a client-issued trace ID to the query. The
// server traces the whole request path under it — admission wait,
// compile, execution — echoes it in the terminating frame, and retains
// the trace in its flight recorder, where /debug/traces/<id> (or the
// shell's \trace <id>) finds it. A zero ID is ignored.
func WithTraceID(id gapplydb.TraceID) QueryOption {
	return func(o *queryOpts) { o.trace = id }
}

// WithTracing attaches a fresh trace ID (client-issued tracing without
// choosing the ID yourself; read it back from Stats.TraceID).
func WithTracing() QueryOption {
	return func(o *queryOpts) { o.trace = gapplydb.NewTraceID() }
}

// NewTraceID mints a random trace ID for WithTraceID.
func NewTraceID() gapplydb.TraceID { return gapplydb.NewTraceID() }

// WithPartition pins the GApply partitioning strategy server-side
// ("hash", "sort"; "" restores the engine's cost-based choice). The
// distributed coordinator uses it to make every shard partition the
// way the coordinating plan did.
func WithPartition(strategy string) QueryOption {
	return func(o *queryOpts) { o.w.Partition = strategy }
}

// WithForceRules forces the named cost-based optimizer rules to fire
// for this query (see gapplydb.RuleNames).
func WithForceRules(names ...string) QueryOption {
	return func(o *queryOpts) { o.w.ForceRules = append(o.w.ForceRules, names...) }
}

// WithDisableRules disables the named optimizer rules for this query.
func WithDisableRules(names ...string) QueryOption {
	return func(o *queryOpts) { o.w.DisableRules = append(o.w.DisableRules, names...) }
}

// Stats summarizes one completed remote query.
type Stats struct {
	// Rows is the total row count (or, for XML, document bytes see
	// QueryXML's return).
	Rows int64
	// Elapsed is the server-side execution wall time.
	Elapsed time.Duration
	// Exec carries the engine's work counters, exactly as the embedded
	// Result.Stats would.
	Exec gapplydb.ExecStats
	// TraceID identifies the query's server-side trace (zero when the
	// query was not traced). Set whether the trace was client-issued or
	// head-sampled by the server.
	TraceID gapplydb.TraceID
}

// frame is one demultiplexed message.
type frame struct {
	t       wire.Type
	payload []byte
}

// Conn is one client connection. Safe for concurrent use: queries are
// multiplexed by id and writes are serialized.
type Conn struct {
	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex

	banner   string
	maxFrame int
	nextID   atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan frame
	failErr error
	done    chan struct{} // closed when the read loop exits

	closeOnce sync.Once
	closing   chan struct{} // closed when Close begins
}

// DialOption tunes connection establishment.
type DialOption func(*dialConfig)

type dialConfig struct {
	maxFrame int
}

// WithMaxFrame proposes a per-frame payload limit for the session. The
// handshake negotiates the smaller of the client's and server's limits;
// a proposal the server cannot honor fails Dial with a
// *wire.FrameSizeError. 0 keeps wire.DefaultMaxFrame.
func WithMaxFrame(n int) DialOption {
	return func(c *dialConfig) { c.maxFrame = n }
}

// Dial connects with no deadline. See DialContext.
func Dial(addr string, opts ...DialOption) (*Conn, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext connects to a gapplyd server and performs the protocol
// handshake. The context bounds connection establishment only.
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Conn, error) {
	var dc dialConfig
	for _, o := range opts {
		o(&dc)
	}
	offer := dc.maxFrame
	if offer <= 0 {
		offer = wire.DefaultMaxFrame
	}
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		conn:     nc,
		bw:       bufio.NewWriterSize(nc, 64<<10),
		maxFrame: offer,
		pending:  make(map[uint64]chan frame),
		done:     make(chan struct{}),
		closing:  make(chan struct{}),
	}
	if deadline, ok := ctx.Deadline(); ok {
		nc.SetDeadline(deadline)
	}
	if err := c.writeFrame(wire.TypeHello, wire.EncodeHelloMax(dc.maxFrame)); err != nil {
		nc.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	t, payload, err := wire.ReadFrame(br, c.maxFrame)
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch t {
	case wire.TypeWelcome:
	case wire.TypeError:
		if m, derr := wire.DecodeError(payload); derr == nil {
			nc.Close()
			return nil, &ServerError{Code: m.Code, Message: m.Message}
		}
		fallthrough
	default:
		nc.Close()
		return nil, fmt.Errorf("client: unexpected handshake frame %v", t)
	}
	var negotiated int
	if _, c.banner, negotiated, err = wire.DecodeWelcome(payload); err != nil {
		nc.Close()
		return nil, err
	}
	if negotiated > offer {
		// A server that predates negotiation confirms DefaultMaxFrame; a
		// client that offered less cannot safely read the frames it may send.
		nc.Close()
		return nil, &wire.FrameSizeError{Proposed: negotiated, Limit: offer}
	}
	c.maxFrame = negotiated
	nc.SetDeadline(time.Time{})
	go c.readLoop(br)
	return c, nil
}

// Banner returns the server identification from the handshake.
func (c *Conn) Banner() string { return c.banner }

// MaxFrame returns the session's negotiated per-frame payload limit.
func (c *Conn) MaxFrame() int { return c.maxFrame }

// Healthy reports whether the connection is still usable: not closed
// and with a live read loop. It is a cheap local check — Ping for an
// end-to-end probe.
func (c *Conn) Healthy() bool {
	select {
	case <-c.closing:
		return false
	case <-c.done:
		return false
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failErr == nil
}

// Close tears the connection down; every in-flight call fails with
// ErrConnClosed. Safe even with abandoned (un-Closed) Rows iterators
// holding undelivered frames.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closing) })
	err := c.conn.Close()
	<-c.done
	return err
}

func (c *Conn) writeFrame(t wire.Type, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := wire.WriteFrame(c.bw, t, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// readLoop demultiplexes incoming frames to the pending calls by
// leading query id. It exits (failing everything) on any transport or
// framing error — the protocol has no resynchronization point.
func (c *Conn) readLoop(br *bufio.Reader) {
	var err error
	for {
		var t wire.Type
		var payload []byte
		t, payload, err = wire.ReadFrame(br, c.maxFrame)
		if err != nil {
			break
		}
		id, derr := wire.DecodeID(payload[:min(len(payload), 8)])
		if derr != nil {
			err = derr
			break
		}
		c.mu.Lock()
		ch := c.pending[id]
		c.mu.Unlock()
		if ch != nil {
			// The send blocks if the query's consumer has fallen behind its
			// channel buffer; an abandoned consumer must not be able to
			// deadlock Close, so Close's signal breaks the wait.
			select {
			case ch <- frame{t: t, payload: payload}:
			case <-c.closing:
				err = net.ErrClosed
			}
			if err != nil {
				break
			}
		}
		// Frames for an unknown id (a query already torn down) are
		// dropped: the server terminates every stream with End/Error, and
		// teardown paths drain to that marker before deregistering.
	}
	c.mu.Lock()
	c.failErr = fmt.Errorf("%w: %w", ErrConnClosed, err)
	pending := c.pending
	c.pending = make(map[uint64]chan frame)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	close(c.done)
	c.conn.Close()
}

// register claims a fresh id and its demux channel.
func (c *Conn) register() (uint64, chan frame, error) {
	id := c.nextID.Add(1)
	ch := make(chan frame, 64)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failErr != nil {
		return 0, nil, c.failErr
	}
	c.pending[id] = ch
	return id, ch, nil
}

func (c *Conn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// connErr returns the failure the read loop recorded.
func (c *Conn) connErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failErr != nil {
		return c.failErr
	}
	return ErrConnClosed
}

// watchCancel forwards ctx's cancellation as a wire-level Cancel for
// id. The returned stop must be called when the query settles.
func (c *Conn) watchCancel(ctx context.Context, id uint64) func() {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	stop := context.AfterFunc(ctx, func() {
		c.writeFrame(wire.TypeCancel, wire.EncodeID(id))
	})
	return func() { stop() }
}

// Query submits a statement and returns a streaming Rows over its
// result. Cancelling ctx cancels the query server-side; the iterator
// then ends with an error satisfying errors.Is(err, context.Canceled).
// The caller must Close the Rows (idempotent; exhaustion makes it a
// no-op) or the query's frames would stall the connection's demux loop.
func (c *Conn) Query(ctx context.Context, query string, opts ...QueryOption) (*Rows, error) {
	var o queryOpts
	for _, f := range opts {
		f(&o)
	}
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	msg := wire.QueryMsg{ID: id, SQL: query, Opts: o.w, Trace: o.trace}
	if err := c.writeFrame(wire.TypeQuery, msg.Encode()); err != nil {
		c.unregister(id)
		return nil, err
	}
	stop := c.watchCancel(ctx, id)
	f, ok := <-ch
	if !ok {
		stop()
		return nil, c.connErr()
	}
	switch f.t {
	case wire.TypeRowHeader:
		h, err := wire.DecodeRowHeader(f.payload)
		if err != nil {
			stop()
			c.unregister(id)
			return nil, err
		}
		return &Rows{conn: c, id: id, ch: ch, stop: stop, Columns: h.Columns}, nil
	case wire.TypeError:
		stop()
		c.unregister(id)
		return nil, decodeServerError(f.payload)
	default:
		stop()
		c.unregister(id)
		return nil, fmt.Errorf("client: unexpected frame %v before header", f.t)
	}
}

// QueryXML submits a statement in XML mode: the server executes it,
// runs the rows through the constant-space tagger under the given tag
// plan, and streams the document, which is written to w chunk by
// chunk. Returns the final stats (Rows = document bytes).
func (c *Conn) QueryXML(ctx context.Context, query string, plan *xmlpub.TagPlan, w io.Writer, opts ...QueryOption) (Stats, error) {
	var o queryOpts
	for _, f := range opts {
		f(&o)
	}
	planJSON, err := json.Marshal(plan)
	if err != nil {
		return Stats{}, err
	}
	o.w.XML = true
	o.w.TagPlan = planJSON
	id, ch, err := c.register()
	if err != nil {
		return Stats{}, err
	}
	defer c.unregister(id)
	msg := wire.QueryMsg{ID: id, SQL: query, Opts: o.w, Trace: o.trace}
	if err := c.writeFrame(wire.TypeQuery, msg.Encode()); err != nil {
		return Stats{}, err
	}
	stop := c.watchCancel(ctx, id)
	defer stop()
	for {
		f, ok := <-ch
		if !ok {
			return Stats{}, c.connErr()
		}
		switch f.t {
		case wire.TypeXMLChunk:
			_, chunk, err := wire.DecodeChunk(f.payload)
			if err != nil {
				return Stats{}, err
			}
			if _, err := w.Write(chunk); err != nil {
				// Local sink failure: cancel the stream server-side and
				// drain to the terminator so the id can be reused safely.
				c.writeFrame(wire.TypeCancel, wire.EncodeID(id))
				drainTo(ch)
				return Stats{}, err
			}
		case wire.TypeEnd:
			m, err := wire.DecodeEnd(f.payload)
			if err != nil {
				return Stats{}, err
			}
			return Stats{Rows: m.Rows, Elapsed: m.Elapsed, Exec: foldStats(m.Stats), TraceID: m.Trace}, nil
		case wire.TypeError:
			return Stats{}, decodeServerError(f.payload)
		default:
			return Stats{}, fmt.Errorf("client: unexpected frame %v in XML stream", f.t)
		}
	}
}

// Set assigns a session-scoped default on the server: "timeout",
// "max_output_rows", "max_partition_bytes", "dop", "explain"
// (off|plan|analyze), or "trace_sampling" (0..1, or "default" for the
// server's configured probability). Subsequent queries on this
// connection inherit it unless their own options override.
func (c *Conn) Set(name, value string) error {
	id, ch, err := c.register()
	if err != nil {
		return err
	}
	defer c.unregister(id)
	msg := wire.SetMsg{ID: id, Name: name, Value: value}
	if err := c.writeFrame(wire.TypeSet, msg.Encode()); err != nil {
		return err
	}
	f, ok := <-ch
	if !ok {
		return c.connErr()
	}
	switch f.t {
	case wire.TypeOK:
		return nil
	case wire.TypeError:
		return decodeServerError(f.payload)
	default:
		return fmt.Errorf("client: unexpected frame %v for set", f.t)
	}
}

// Ping round-trips a no-op frame, verifying the connection and the
// server's dispatch loop are alive.
func (c *Conn) Ping(ctx context.Context) error {
	id, ch, err := c.register()
	if err != nil {
		return err
	}
	defer c.unregister(id)
	if err := c.writeFrame(wire.TypePing, wire.EncodeID(id)); err != nil {
		return err
	}
	select {
	case f, ok := <-ch:
		if !ok {
			return c.connErr()
		}
		if f.t != wire.TypePong {
			return fmt.Errorf("client: unexpected frame %v for ping", f.t)
		}
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// Rows streams one query's result. Not safe for concurrent use (one
// consumer per query; separate queries on the same Conn are fine).
type Rows struct {
	// Columns are the output column names, in order.
	Columns []string

	conn  *Conn
	id    uint64
	ch    chan frame
	stop  func()
	batch [][]any
	bi    int
	stats Stats
	done  bool
	err   error
}

// Next returns the next row; ok=false with nil error marks exhaustion.
// Any error is final.
func (r *Rows) Next() ([]any, bool, error) {
	for {
		if r.bi < len(r.batch) {
			row := r.batch[r.bi]
			r.bi++
			return row, true, nil
		}
		if r.done {
			return nil, false, r.err
		}
		f, ok := <-r.ch
		if !ok {
			r.settle(r.conn.connErr())
			return nil, false, r.err
		}
		switch f.t {
		case wire.TypeRowBatch:
			_, rows, err := wire.DecodeRowBatch(f.payload)
			if err != nil {
				r.settle(err)
				return nil, false, r.err
			}
			r.batch, r.bi = rows, 0
		case wire.TypeEnd:
			m, err := wire.DecodeEnd(f.payload)
			if err != nil {
				r.settle(err)
				return nil, false, r.err
			}
			r.stats = Stats{Rows: m.Rows, Elapsed: m.Elapsed, Exec: foldStats(m.Stats), TraceID: m.Trace}
			r.settle(nil)
			return nil, false, nil
		case wire.TypeError:
			r.settle(decodeServerError(f.payload))
			return nil, false, r.err
		default:
			r.settle(fmt.Errorf("client: unexpected frame %v in row stream", f.t))
			return nil, false, r.err
		}
	}
}

// settle finalizes the stream state exactly once.
func (r *Rows) settle(err error) {
	if r.done {
		return
	}
	r.done = true
	r.err = err
	r.stop()
	r.conn.unregister(r.id)
}

// Close releases the query. Closing before exhaustion cancels it
// server-side and drains the stream to its terminator, so the
// connection stays usable. Idempotent.
func (r *Rows) Close() error {
	if r.done {
		return nil
	}
	r.conn.writeFrame(wire.TypeCancel, wire.EncodeID(r.id))
	drainTo(r.ch)
	r.settle(nil)
	return nil
}

// Err returns the error the stream ended with, if any.
func (r *Rows) Err() error { return r.err }

// Stats returns the completed query's statistics (zero until the
// stream ends normally).
func (r *Rows) Stats() Stats { return r.stats }

// drainTo consumes frames until the stream's End/Error terminator (or
// connection death), discarding payloads.
func drainTo(ch chan frame) {
	for f := range ch {
		if f.t == wire.TypeEnd || f.t == wire.TypeError {
			return
		}
	}
}

// decodeServerError converts a wire error payload.
func decodeServerError(p []byte) error {
	m, err := wire.DecodeError(p)
	if err != nil {
		return err
	}
	return &ServerError{Code: m.Code, Message: m.Message, TraceID: m.Trace}
}

// foldStats rebuilds ExecStats from the wire's (name, value) pairs.
func foldStats(pairs []wire.StatPair) gapplydb.ExecStats {
	var st gapplydb.ExecStats
	for _, p := range pairs {
		switch p.Name {
		case "rows_scanned":
			st.RowsScanned = p.Value
		case "groups":
			st.Groups = p.Value
		case "inner_execs":
			st.InnerExecs = p.Value
		case "serial_group_execs":
			st.SerialGroupExecs = p.Value
		case "parallel_group_execs":
			st.ParallelGroupExecs = p.Value
		case "apply_execs":
			st.ApplyExecs = p.Value
		case "apply_cache_hits":
			st.ApplyCacheHits = p.Value
		case "join_probes":
			st.JoinProbes = p.Value
		case "spool_builds":
			st.SpoolBuilds = p.Value
		case "spool_hits":
			st.SpoolHits = p.Value
		case "plan_cache_hits":
			st.PlanCacheHits = p.Value
		}
	}
	return st
}
