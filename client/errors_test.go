package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gapplydb"
	"gapplydb/client"
	"gapplydb/internal/server"
)

// The client's error surface is part of the wire contract: every
// server-side failure class must arrive as a typed *ServerError whose
// code matches the taxonomy, and the cancellation/timeout codes must
// additionally satisfy errors.Is against the context sentinels so
// callers can keep their ctx-based error handling unchanged over the
// wire.

var (
	errDBOnce sync.Once
	errDB     *gapplydb.Database
)

func errTestDB(t *testing.T) *gapplydb.Database {
	t.Helper()
	errDBOnce.Do(func() {
		db, err := gapplydb.OpenTPCH(0.001)
		if err != nil {
			panic(err)
		}
		errDB = db
	})
	return errDB
}

func startErrServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	srv := server.New(errTestDB(t), cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	return srv
}

// counterValue reads one server registry counter through the public
// HTTP metrics handler — the only window client tests have into the
// server's internals.
func counterValue(t *testing.T, srv *server.Server, name string) int64 {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.HTTPHandler().ServeHTTP(rec, req)
	var s struct {
		Counters map[string]int64
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	return s.Counters[name]
}

// waitCounter polls a counter until it reaches at least want.
func waitCounter(t *testing.T, srv *server.Server, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for counterValue(t, srv, name) < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %d (now %d)", name, want, counterValue(t, srv, name))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func dialErr(t *testing.T, addr string) *client.Conn {
	t.Helper()
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// wideStream produces far more output than client-channel plus kernel
// buffering can hold (1.6M rows ≈ 40 MB at sf 0.001), so mid-stream
// control actions (cancel, close) always land while the server is still
// producing.
const wideStream = "select ps_partkey, p_partkey, s_suppkey from partsupp, part, supplier"

// slowQuery runs long enough (a 16M-row cross product) to hold an
// admission slot while the test probes rejection behavior.
const slowQuery = "select count(*) from partsupp, part, supplier, supplier as s2"

func drainUntilError(t *testing.T, rows *client.Rows) error {
	t.Helper()
	for {
		_, ok, err := rows.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

func TestBusyFastReject(t *testing.T) {
	// One slot, one queue position: a running slow query holds the slot,
	// a second waits in the queue, so a third submission must be
	// fast-rejected with CodeBusy rather than waiting.
	srv := startErrServer(t, server.Config{MaxConcurrent: 1, MaxQueued: 1})
	addr := srv.Addr().String()
	holder := dialErr(t, addr)
	probe := dialErr(t, addr)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := holder.Query(ctx, slowQuery)
			if err == nil {
				drainUntilError(t, rows)
			}
		}()
	}
	defer wg.Wait()
	defer cancel()

	// Deterministic sequencing via the server's own counters: one holder
	// executing, the other in the admission queue.
	waitCounter(t, srv, "server_queries_active", 1)
	waitCounter(t, srv, "server_queries_queued", 1)

	_, err := probe.Query(context.Background(), "select count(*) from part")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != client.CodeBusy {
		t.Fatalf("err = %v, want ServerError code %q", err, client.CodeBusy)
	}
	if counterValue(t, srv, "server_errors_"+client.CodeBusy) < 1 {
		t.Fatal("server_errors_busy counter did not record the rejection")
	}
}

func TestSessionInFlightLimit(t *testing.T) {
	srv := startErrServer(t, server.Config{SessionInFlight: 1})
	conn := dialErr(t, srv.Addr().String())

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rows, err := conn.Query(ctx, slowQuery)
		if err == nil {
			drainUntilError(t, rows)
		}
	}()
	defer wg.Wait()
	defer cancel()

	waitCounter(t, srv, "server_queries_active", 1)
	_, err := conn.Query(context.Background(), "select count(*) from part")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != client.CodeSession {
		t.Fatalf("err = %v, want ServerError code %q", err, client.CodeSession)
	}
}

func TestCancelDuringStream(t *testing.T) {
	conn := dialErr(t, startErrServer(t, server.Config{}).Addr().String())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := conn.Query(ctx, wideStream)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for i := 0; i < 100; i++ {
		if _, ok, err := rows.Next(); err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
	}
	cancel()
	err = drainUntilError(t, rows)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != client.CodeCancelled {
		t.Fatalf("err = %v, want ServerError code %q", err, client.CodeCancelled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ServerError must satisfy errors.Is(err, context.Canceled); got %v", err)
	}
	// The connection survives a cancelled query: the next statement on
	// the same session must work.
	rows2, err := conn.Query(context.Background(), "select count(*) from part")
	if err != nil {
		t.Fatalf("post-cancel query: %v", err)
	}
	if err := drainUntilError(t, rows2); err != nil {
		t.Fatalf("post-cancel drain: %v", err)
	}
}

func TestTimeoutMapsToDeadline(t *testing.T) {
	conn := dialErr(t, startErrServer(t, server.Config{}).Addr().String())
	rows, err := conn.Query(context.Background(), slowQuery, client.WithTimeout(time.Millisecond))
	if err == nil {
		err = drainUntilError(t, rows)
	}
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != client.CodeTimeout {
		t.Fatalf("err = %v, want ServerError code %q", err, client.CodeTimeout)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout ServerError must satisfy errors.Is(err, context.DeadlineExceeded); got %v", err)
	}
}

func TestBudgetExceeded(t *testing.T) {
	conn := dialErr(t, startErrServer(t, server.Config{}).Addr().String())
	rows, err := conn.Query(context.Background(), wideStream, client.WithMaxOutputRows(10))
	if err == nil {
		err = drainUntilError(t, rows)
	}
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != client.CodeResource {
		t.Fatalf("err = %v, want ServerError code %q", err, client.CodeResource)
	}
}

func TestMidStreamDisconnect(t *testing.T) {
	// Closing the connection under an active stream must surface
	// ErrConnClosed from the iterator, not a hang or a panic.
	addr := startErrServer(t, server.Config{}).Addr().String()
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := conn.Query(context.Background(), wideStream)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok, err := rows.Next(); err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	err = drainUntilError(t, rows)
	if !errors.Is(err, client.ErrConnClosed) {
		t.Fatalf("err = %v, want ErrConnClosed", err)
	}
	// Further use of the closed connection fails the same way.
	if _, err := conn.Query(context.Background(), "select 1"); !errors.Is(err, client.ErrConnClosed) {
		t.Fatalf("post-close query err = %v, want ErrConnClosed", err)
	}
}

func TestParseErrorCode(t *testing.T) {
	conn := dialErr(t, startErrServer(t, server.Config{}).Addr().String())
	_, err := conn.Query(context.Background(), "selec nonsense from nowhere")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != client.CodeParse {
		t.Fatalf("err = %v, want ServerError code %q", err, client.CodeParse)
	}
}
