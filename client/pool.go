package client

import (
	"context"
	"errors"
	"sync"
	"time"
)

// PoolConfig tunes a Pool. The zero value (plus Addr) is usable.
type PoolConfig struct {
	// Addr is the gapplyd address every pooled connection dials.
	Addr string
	// Size bounds the connections the pool will hold and hand out at
	// once; Get blocks (or fails with ctx) when all are in use.
	// Default: 2.
	Size int
	// DialTimeout bounds one dial+handshake attempt. Default: 5s.
	DialTimeout time.Duration
	// PingInterval is how often the background health loop pings one
	// idle connection; 0 disables background checking (connections are
	// still health-checked on Get).
	PingInterval time.Duration
	// BackoffMin/BackoffMax bound the redial backoff: after a dial
	// failure the pool refuses further dials until the backoff window
	// passes, doubling the window per consecutive failure. Defaults:
	// 100ms / 5s.
	BackoffMin, BackoffMax time.Duration
	// DialOptions are applied to every dial (e.g. WithMaxFrame).
	DialOptions []DialOption
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Size <= 0 {
		c.Size = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	return c
}

// ErrPoolClosed reports use of a closed Pool.
var ErrPoolClosed = errors.New("client: pool closed")

// PoolStats is a point-in-time snapshot of a Pool.
type PoolStats struct {
	// Idle and InUse count held connections; Idle+InUse <= Size.
	Idle, InUse int
	// Dials and DialFailures count attempts over the pool's lifetime.
	Dials, DialFailures int64
	// Unhealthy counts connections discarded by health checks.
	Unhealthy int64
}

// Pool is a small bounded connection pool: at most Size connections to
// one gapplyd server, health-checked and redialed with exponential
// backoff. Get hands out a connection (dialing if none is idle), Put
// returns it. The distributed coordinator keeps one Pool per shard;
// it is exported for any client with the same need.
//
// A connection handed out by Get is owned by the caller until Put; the
// Conn itself still multiplexes, so callers that want concurrent
// queries on one connection may share it before returning it.
type Pool struct {
	cfg PoolConfig

	// slots is a semaphore of width Size: acquire to hold a connection.
	slots chan struct{}

	mu       sync.Mutex
	idle     []*Conn
	closed   bool
	failures int       // consecutive dial failures
	nextDial time.Time // dials before this instant fast-fail (backoff)
	stats    PoolStats

	pingStop chan struct{}
	pingDone chan struct{}
}

// NewPool builds a pool. No connection is dialed until the first Get;
// the background ping loop (if enabled) starts immediately.
func NewPool(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:      cfg,
		slots:    make(chan struct{}, cfg.Size),
		pingStop: make(chan struct{}),
		pingDone: make(chan struct{}),
	}
	if cfg.PingInterval > 0 {
		go p.pingLoop()
	} else {
		close(p.pingDone)
	}
	return p
}

// Get returns a healthy connection, dialing one if no idle connection
// is available. It blocks while all Size connections are in use (ctx
// cancels the wait). During a redial-backoff window Get fails fast with
// the window's deadline in the error, so a dead shard cannot stall its
// callers for DialTimeout per call.
func (p *Pool) Get(ctx context.Context) (*Conn, error) {
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
	// Slot acquired; every return path below either hands the slot to
	// the caller (success) or releases it (failure).
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			<-p.slots
			return nil, ErrPoolClosed
		}
		var c *Conn
		if n := len(p.idle); n > 0 {
			c = p.idle[n-1]
			p.idle = p.idle[:n-1]
		}
		p.mu.Unlock()
		if c == nil {
			break // dial a fresh one
		}
		if c.Healthy() {
			p.track(func(s *PoolStats) { s.InUse++ })
			return c, nil
		}
		p.track(func(s *PoolStats) { s.Unhealthy++ })
		c.Close()
	}

	c, err := p.dial(ctx)
	if err != nil {
		<-p.slots
		return nil, err
	}
	p.track(func(s *PoolStats) { s.InUse++ })
	return c, nil
}

// dial attempts one connection, honoring and updating the backoff state.
func (p *Pool) dial(ctx context.Context) (*Conn, error) {
	p.mu.Lock()
	if wait := time.Until(p.nextDial); wait > 0 {
		p.mu.Unlock()
		return nil, &BackoffError{Wait: wait}
	}
	p.stats.Dials++
	p.mu.Unlock()

	dctx, cancel := context.WithTimeout(ctx, p.cfg.DialTimeout)
	defer cancel()
	c, err := DialContext(dctx, p.cfg.Addr, p.cfg.DialOptions...)

	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		p.stats.DialFailures++
		p.failures++
		backoff := p.cfg.BackoffMin << (p.failures - 1)
		if backoff > p.cfg.BackoffMax || backoff <= 0 {
			backoff = p.cfg.BackoffMax
		}
		p.nextDial = time.Now().Add(backoff)
		return nil, err
	}
	p.failures = 0
	p.nextDial = time.Time{}
	if p.closed {
		c.Close()
		return nil, ErrPoolClosed
	}
	return c, nil
}

// BackoffError reports a Get refused because the pool is inside its
// redial-backoff window after a dial failure.
type BackoffError struct{ Wait time.Duration }

func (e *BackoffError) Error() string {
	return "client: pool in dial backoff for " + e.Wait.String()
}

// Put returns a connection obtained from Get. An unhealthy connection
// is closed and discarded (the slot frees either way). Put(nil)
// releases the slot of a connection the caller closed itself.
func (p *Pool) Put(c *Conn) {
	if c != nil {
		p.mu.Lock()
		closed := p.closed
		healthy := c.Healthy()
		if !closed && healthy {
			p.idle = append(p.idle, c)
			c = nil
		}
		p.mu.Unlock()
		if c != nil {
			c.Close()
		}
	}
	p.track(func(s *PoolStats) { s.InUse-- })
	<-p.slots
}

// Healthy reports whether the pool can currently serve connections: it
// is open, not inside a dial-backoff window, and any idle connection is
// live. It does not dial.
func (p *Pool) Healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	if time.Until(p.nextDial) > 0 {
		return false
	}
	for _, c := range p.idle {
		if !c.Healthy() {
			return false
		}
	}
	return true
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Idle = len(p.idle)
	return st
}

func (p *Pool) track(f func(*PoolStats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// pingLoop health-checks one idle connection per interval, discarding
// any that fail and thereby forcing the next Get to redial.
func (p *Pool) pingLoop() {
	defer close(p.pingDone)
	t := time.NewTicker(p.cfg.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-p.pingStop:
			return
		case <-t.C:
		}
		p.mu.Lock()
		var c *Conn
		if n := len(p.idle); n > 0 {
			c = p.idle[n-1]
			p.idle = p.idle[:n-1]
		}
		p.mu.Unlock()
		if c == nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.cfg.DialTimeout)
		err := c.Ping(ctx)
		cancel()
		p.mu.Lock()
		if err != nil || p.closed {
			p.stats.Unhealthy++
			p.mu.Unlock()
			c.Close()
			continue
		}
		p.idle = append(p.idle, c)
		p.mu.Unlock()
	}
}

// Close closes the pool and its idle connections. Connections currently
// handed out are closed when Put returns them. Idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.pingDone
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	close(p.pingStop)
	for _, c := range idle {
		c.Close()
	}
	<-p.pingDone
	return nil
}
