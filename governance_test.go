package gapplydb

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

const gapplyCountQ = `select gapply(select count(*) from g) as (n)
	from partsupp group by ps_suppkey : g`

// TestQueryContextCancelled: a query on an already-cancelled context
// fails with context.Canceled and the session metrics record it in the
// cancelled tally (not just the generic error count).
func TestQueryContextCancelled(t *testing.T) {
	db := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, gapplyCountQ)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	m := db.Metrics()
	if m.Counters["queries_cancelled"] != 1 {
		t.Errorf("queries_cancelled = %d, want 1", m.Counters["queries_cancelled"])
	}
	if m.Counters["query_errors"] != 1 {
		t.Errorf("query_errors = %d, want 1", m.Counters["query_errors"])
	}
	if m.Counters["queries_timed_out"] != 0 || m.Counters["queries_budget_killed"] != 0 {
		t.Errorf("misclassified: %v", m.Counters)
	}
	// The session keeps working after a cancelled statement.
	if _, err := db.Query("select count(*) from part"); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

// TestQueryTimeout: WithTimeout turns into a deadline on the execution
// context; an expired deadline surfaces as context.DeadlineExceeded and
// lands in the timed-out tally.
func TestQueryTimeout(t *testing.T) {
	db := fixture(t)
	_, err := db.Query(gapplyCountQ, WithTimeout(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := db.Metrics().Counters["queries_timed_out"]; got != 1 {
		t.Errorf("queries_timed_out = %d, want 1", got)
	}
	// A generous timeout lets the query through.
	if _, err := db.Query(gapplyCountQ, WithTimeout(time.Minute)); err != nil {
		t.Fatalf("roomy timeout: %v", err)
	}
}

// TestQueryContextDeadlineComposesWithTimeout: the earlier of the
// caller's deadline and the budget timeout wins.
func TestQueryContextDeadlineComposesWithTimeout(t *testing.T) {
	db := fixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, err := db.QueryContext(ctx, gapplyCountQ, WithTimeout(time.Minute))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the caller's deadline to win", err)
	}
}

// TestQueryBudgetOutputRows: blowing MaxOutputRows yields a typed
// *ResourceError naming the limit and the offending operator, and lands
// in the budget-killed tally.
func TestQueryBudgetOutputRows(t *testing.T) {
	db := fixture(t)
	_, err := db.Query("select p_name from part", WithBudget(Budget{MaxOutputRows: 2}))
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *gapplydb.ResourceError", err, err)
	}
	if re.Limit != "max-output-rows" || re.Max != 2 || re.Used != 3 {
		t.Errorf("ResourceError = %+v", re)
	}
	if re.Operator == "" {
		t.Error("ResourceError.Operator must name the plan operator")
	}
	if !strings.Contains(re.Error(), "max-output-rows") {
		t.Errorf("Error() = %q", re.Error())
	}
	if got := db.Metrics().Counters["queries_budget_killed"]; got != 1 {
		t.Errorf("queries_budget_killed = %d, want 1", got)
	}
	// Within budget, the query succeeds.
	if _, err := db.Query("select p_name from part", WithBudget(Budget{MaxOutputRows: 10})); err != nil {
		t.Fatalf("roomy budget: %v", err)
	}
}

// gapplyUnionQ is the Q2-style groupwise query whose union-of-subquery
// per-group shape the optimizer keeps as a real GApply (the plain
// count(*) shape decorrelates into a GroupBy with no partition phase).
const gapplyUnionQ = `select gapply(select count(*), null from g
		where p_retailprice >= (select avg(p_retailprice) from g)
		union all
		select null, count(*) from g
		where p_retailprice < (select avg(p_retailprice) from g)
	) as (above, below)
	from partsupp, part where ps_partkey = p_partkey
	group by ps_suppkey : g`

// TestQueryBudgetPartitionBytes: the partition-byte meter covers the
// GApply materialization and reports the GApply as the offender.
func TestQueryBudgetPartitionBytes(t *testing.T) {
	db := fixture(t)
	_, err := db.Query(gapplyUnionQ, WithBudget(Budget{MaxPartitionBytes: 32}))
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *gapplydb.ResourceError", err)
	}
	if re.Limit != "max-partition-bytes" || !strings.Contains(re.Operator, "GApply") {
		t.Errorf("ResourceError = %+v", re)
	}
	if _, err := db.Query(gapplyUnionQ, WithBudget(Budget{MaxPartitionBytes: 1 << 20})); err != nil {
		t.Fatalf("roomy budget: %v", err)
	}
}

// TestQueryContextNilContext: a nil context is tolerated (treated as
// background) rather than panicking deep in the engine.
func TestQueryContextNilContext(t *testing.T) {
	db := fixture(t)
	var nilCtx context.Context
	res, err := db.QueryContext(nilCtx, "select count(*) from part")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("nil ctx: res=%v err=%v", res, err)
	}
}

// TestExplainAnalyzeContextCancelled: the EXPLAIN ANALYZE entry point
// honors the same cancellation contract as QueryContext.
func TestExplainAnalyzeContextCancelled(t *testing.T) {
	db := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ExplainAnalyzeContext(ctx, gapplyCountQ); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := db.Metrics().Counters["queries_cancelled"]; got != 1 {
		t.Errorf("queries_cancelled = %d, want 1", got)
	}
}

// TestParallelCancellationThroughAPI is the end-to-end acceptance check:
// a parallel (dop 8) groupwise query cancelled mid-execution returns
// context.Canceled promptly and the metrics record the cancellation.
func TestParallelCancellationThroughAPI(t *testing.T) {
	db := Open()
	if err := db.CreateTable("obs", []Column{{"k", "int"}, {"v", "float"}}, nil); err != nil {
		t.Fatal(err)
	}
	rows := make([][]any, 0, 60000)
	for i := 0; i < 60000; i++ {
		rows = append(rows, []any{i % 20000, float64(i)})
	}
	if err := db.Insert("obs", rows...); err != nil {
		t.Fatal(err)
	}
	db.RefreshStats()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// 20000 groups, each evaluating a union of subquery-filtered scans:
	// far more than 5ms of work, so the cancel lands mid-execution.
	_, err := db.QueryContext(ctx, `select gapply(select count(*), null from g
			where v >= (select avg(v) from g)
			union all
			select null, count(*) from g
			where v < (select avg(v) from g)
		) as (above, below) from obs group by k : g`, WithDOP(8))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (elapsed %v)", err, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation not prompt: %v", elapsed)
	}
	if got := db.Metrics().Counters["queries_cancelled"]; got != 1 {
		t.Errorf("queries_cancelled = %d, want 1", got)
	}
}
