package gapplydb_test

import (
	"fmt"
	"testing"

	"gapplydb"
	"gapplydb/experiments"
	"gapplydb/xmlpub"
)

// The differential battery executes the full evaluation workload — every
// Figure 8 and Table 1 statement — under the optimizer off, the
// optimizer on, and the parallel GApply execution phase at dop 1, 2 and
// 8, asserting the configurations agree. Parallelism must be invisible:
// not just the same row multiset but byte-identical ordered output,
// because the constant-space XML tagger depends on the clustered order.

// ordered renders a result's rows in output order.
func ordered(res *gapplydb.Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		out[i] = fmt.Sprint(row)
	}
	return out
}

func firstDiff(a, b []string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("row %d: %s vs %s", i, a[i], b[i])
		}
	}
	return ""
}

func TestDifferentialSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("differential battery skipped in -short mode")
	}
	db := integDatabase(t)
	for _, sq := range experiments.SuiteQueries() {
		sq := sq
		t.Run(sq.Name, func(t *testing.T) {
			serial, err := db.Query(sq.SQL, gapplydb.WithDOP(1))
			if err != nil {
				t.Fatalf("dop 1: %v\n%s", err, sq.SQL)
			}
			want := ordered(serial)
			wantSet := canonical(serial)

			// Parallel execution at every degree must be byte-identical to
			// serial, ordering included.
			for _, dop := range []int{2, 8} {
				res, err := db.Query(sq.SQL, gapplydb.WithDOP(dop))
				if err != nil {
					t.Fatalf("dop %d: %v", dop, err)
				}
				if d := firstDiff(want, ordered(res)); d != "" {
					t.Fatalf("dop %d diverged from serial: %s", dop, d)
				}
			}
			// The default configuration (rules on, default parallelism) is
			// the same plan — it too must match byte-for-byte.
			res, err := db.Query(sq.SQL)
			if err != nil {
				t.Fatalf("default: %v", err)
			}
			if d := firstDiff(want, ordered(res)); d != "" {
				t.Fatalf("default config diverged from dop 1: %s", d)
			}
			// Optimizer off changes plan shape, so only the multiset is
			// preserved. Raw cross-product plans are intractable — skipped,
			// as in the integration battery.
			if !sq.Heavy {
				raw, err := db.Query(sq.SQL, gapplydb.WithoutOptimizer(), gapplydb.WithDOP(8))
				if err != nil {
					t.Fatalf("no-optimizer: %v", err)
				}
				if !equalCanonical(wantSet, canonical(raw)) {
					t.Fatalf("optimizer off changed the result multiset (%d vs %d rows)",
						len(serial.Rows), len(raw.Rows))
				}
			}
		})
	}
}

// TestDifferentialXML locks in the end product: the published XML
// document for every FLWR query is identical under both translation
// strategies and at every GApply parallel degree.
func TestDifferentialXML(t *testing.T) {
	if testing.Short() {
		t.Skip("differential battery skipped in -short mode")
	}
	db := integDatabase(t)
	queries := []struct {
		name string
		q    *xmlpub.FLWR
	}{
		{"Q1", xmlpub.Q1()},
		{"Q2", xmlpub.Q2()},
		{"Q3", xmlpub.Q3(0.9, 1.1)},
		{"ExpensiveSuppliers", xmlpub.ExpensiveSuppliers(2050)},
		{"RichSuppliers", xmlpub.RichSuppliers(1500)},
	}
	for _, tc := range queries {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var want string
			for _, strategy := range []xmlpub.Strategy{xmlpub.GApply, xmlpub.SortedOuterUnion} {
				for _, dop := range []int{1, 2, 8} {
					var buf stringsBuilder
					if _, err := xmlpub.Publish(db, tc.q, strategy, &buf, gapplydb.WithDOP(dop)); err != nil {
						t.Fatalf("%s dop %d: %v", strategy, dop, err)
					}
					doc := buf.String()
					if len(doc) == 0 {
						t.Fatalf("%s dop %d: empty document", strategy, dop)
					}
					if want == "" {
						want = doc
						continue
					}
					if doc != want {
						t.Fatalf("%s dop %d produced a different document", strategy, dop)
					}
				}
			}
		})
	}
}
