package gapplydb

import (
	"strconv"

	"gapplydb/internal/core"
	"gapplydb/internal/exec"
	"gapplydb/internal/trace"
)

// TraceID identifies one traced query end to end: minted by the client
// or the engine, carried on the wire, echoed on completion, and the key
// into the flight recorder. The zero value means "not traced".
type TraceID = trace.ID

// TraceRecorder is the flight recorder holding completed traces; see
// Database.Traces.
type TraceRecorder = trace.Recorder

// NewTraceID mints a random trace ID (for callers that want to pick the
// ID before issuing the query, so the trace is addressable even if the
// query never completes).
func NewTraceID() TraceID { return trace.NewID() }

// ParseTraceID parses the 32-hex-digit rendering of a trace ID.
func ParseTraceID(s string) (TraceID, error) { return trace.ParseID(s) }

// Default flight-recorder retention: the N most recent completed traces
// plus, independently, the N slowest since the database opened.
const (
	defaultTraceRecent  = 32
	defaultTraceSlowest = 32
)

// WithTracing forces the query to be traced: a trace ID is minted (or
// the one from WithTraceID used), phase and operator spans are
// collected, and the completed trace lands in the flight recorder.
// Tracing implies per-operator instrumentation for the query.
func WithTracing() QueryOption {
	return func(c *queryConfig) { c.forceTrace = true }
}

// WithTraceID traces the query under a caller-chosen ID (a zero ID is
// ignored). Remote clients use this so the ID they hold matches the
// server's flight recorder.
func WithTraceID(id TraceID) QueryOption {
	return func(c *queryConfig) {
		c.traceID = id
		if !id.IsZero() {
			c.forceTrace = true
		}
	}
}

// WithTraceSampling traces the query with probability p (head sampling:
// the decision is made once, before compilation). p <= 0 never samples,
// p >= 1 always does. The decision stream is the database's seeded
// sampler, so tests can pin it with SeedTraceSampler.
func WithTraceSampling(p float64) QueryOption {
	return func(c *queryConfig) { c.traceProb = p }
}

// WithTraceBuilder attaches an externally created trace builder — the
// network server opens the builder itself so the trace includes spans
// (admission wait) from before the engine is entered. The engine adds
// its compile/execute spans to the builder, finishes it, and records the
// completed trace in the flight recorder.
func WithTraceBuilder(b *trace.Builder) QueryOption {
	return func(c *queryConfig) { c.traceBuilder = b }
}

// Traces returns the database's trace flight recorder: the most recent
// and the slowest completed traces, queryable by ID. The server's
// /debug/traces endpoint and gsql's \trace command read from it.
func (db *Database) Traces() *TraceRecorder { return db.traces }

// SeedTraceSampler reseeds the head-sampling decision stream —
// deterministic sampling for tests and reproducible load runs.
func (db *Database) SeedTraceSampler(seed int64) { db.sampler.Reseed(seed) }

// traceSetup decides whether this query is traced and opens its builder:
// an externally supplied builder wins, then a forced/ID'd trace, then
// the sampling draw. Traced queries run instrumented so operator spans
// can be reconstructed from the profile; untraced queries return nil and
// every downstream trace call is a nil-receiver no-op.
func (db *Database) traceSetup(cfg *queryConfig, query string) *trace.Builder {
	if cfg.traceBuilder != nil {
		cfg.instrument = true
		db.reg.Counter("queries_traced").Inc()
		return cfg.traceBuilder
	}
	traced := cfg.forceTrace || !cfg.traceID.IsZero()
	if !traced && cfg.traceProb > 0 {
		traced = db.sampler.Sample(cfg.traceProb)
	}
	if !traced {
		return nil
	}
	id := cfg.traceID
	if id.IsZero() {
		id = trace.NewID()
	}
	tb := trace.NewBuilder(id, query)
	cfg.traceBuilder = tb
	cfg.instrument = true
	db.reg.Counter("queries_traced").Inc()
	return tb
}

// finishTrace seals a builder with the query's outcome and records the
// completed trace in the flight recorder. Safe on nil builders and
// after a previous finish (both no-ops).
func (db *Database) finishTrace(tb *trace.Builder, err error) {
	if tb == nil {
		return
	}
	status, msg := "ok", ""
	if err != nil {
		status, msg = "error", err.Error()
	}
	db.traces.Record(tb.Finish(status, msg))
}

// operatorSpanName names an operator span the way plan summaries do:
// scans keep their table / group variable, everything else is the first
// word of its Describe line.
func operatorSpanName(n core.Node) string {
	switch x := n.(type) {
	case *core.Scan:
		return "Scan " + x.Table
	case *core.GroupScan:
		return "GroupScan $" + x.Var
	}
	name := n.Describe()
	for i := 0; i < len(name); i++ {
		if name[i] == ' ' {
			return name[:i]
		}
	}
	return name
}

// attachOperatorSpans reconstructs per-operator spans from the
// execution profile after the run: one span per plan node, nested to
// mirror the plan tree under the execute span. The profile records
// inclusive time but no wall-clock starts, so every operator span
// inherits the execute span's start offset — in the Chrome rendering
// they stack as a flame graph keyed by duration. Under parallel GApply
// worker times sum, so an operator span may exceed its parent; that is
// the same convention EXPLAIN ANALYZE prints.
func attachOperatorSpans(tb *trace.Builder, execSpan int, plan core.Node, prof *exec.Profile) {
	if tb == nil || prof == nil || plan == nil {
		return
	}
	start := tb.SpanStart(execSpan)
	var walk func(n core.Node, parent int)
	walk = func(n core.Node, parent int) {
		st := prof.Stats(n)
		attrs := []trace.Attr{
			{Key: "rows", Value: strconv.FormatInt(st.Rows, 10)},
			{Key: "loops", Value: strconv.FormatInt(st.Opens, 10)},
		}
		if st.SpoolBuilds > 0 || st.SpoolHits > 0 {
			attrs = append(attrs,
				trace.Attr{Key: "spool_builds", Value: strconv.FormatInt(st.SpoolBuilds, 10)},
				trace.Attr{Key: "spool_hits", Value: strconv.FormatInt(st.SpoolHits, 10)},
				trace.Attr{Key: "spool_bytes", Value: strconv.FormatInt(st.SpoolBytes, 10)},
			)
		}
		idx := tb.AddSynthetic(operatorSpanName(n), parent, start, st.Time, attrs)
		for _, c := range n.Children() {
			walk(c, idx)
		}
	}
	walk(plan, execSpan)
}
