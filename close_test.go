package gapplydb

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// Database.Close battery: Close rejects new work with ErrDatabaseClosed,
// cancels in-flight queries and streams through their execution
// contexts, blocks until they have unwound, invalidates the plan cache,
// and is idempotent under concurrent callers — the teardown contract the
// network server's shutdown sequence is built on.

// closeHeavyQ takes long enough at sf 0.001 that Close always lands
// while it is executing.
const closeHeavyQ = "select count(*) from lineitem l1, lineitem l2"

func closableDB(t *testing.T) *Database {
	t.Helper()
	db, err := OpenTPCH(0.001)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCloseRejectsNewQueries(t *testing.T) {
	db := closableDB(t)
	if _, err := db.Query("select count(*) from part"); err != nil {
		t.Fatalf("before close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("select count(*) from part"); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("Query after close: err = %v, want ErrDatabaseClosed", err)
	}
	if _, err := db.QueryContext(context.Background(), "select count(*) from part"); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("QueryContext after close: err = %v, want ErrDatabaseClosed", err)
	}
	if _, err := db.Stream("select count(*) from part"); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("Stream after close: err = %v, want ErrDatabaseClosed", err)
	}
	if _, err := db.ExplainPlan("select count(*) from part"); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("ExplainPlan after close: err = %v, want ErrDatabaseClosed", err)
	}
	if _, err := db.ExplainAnalyze("select count(*) from part"); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("ExplainAnalyze after close: err = %v, want ErrDatabaseClosed", err)
	}
}

func TestCloseCancelsInFlightQuery(t *testing.T) {
	db := closableDB(t)
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		close(started)
		_, err := db.QueryContext(context.Background(), closeHeavyQ)
		errc <- err
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let execution reach the iterator loop
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("in-flight query ended with %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query did not unwind after Close")
	}
}

func TestCloseCancelsOpenStream(t *testing.T) {
	db := closableDB(t)
	s, err := db.Stream("select l_orderkey from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}

	// Close blocks on the stream; drain it from another goroutine.
	closed := make(chan error, 1)
	go func() { closed <- db.Close() }()
	var streamErr error
	for {
		_, ok, err := s.Next()
		if err != nil {
			streamErr = err
			break
		}
		if !ok {
			break
		}
	}
	// The stream either observed the cancellation mid-flight or won the
	// race and finished; both leave Close free to return.
	if streamErr != nil && !errors.Is(streamErr, context.Canceled) {
		t.Fatalf("stream ended with %v, want context.Canceled or exhaustion", streamErr)
	}
	s.Close()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the stream unwound")
	}
}

func TestCloseInvalidatesPlanCache(t *testing.T) {
	db := closableDB(t)
	const q = "select count(*) from part"
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHits == 0 {
		t.Fatal("second execution missed the plan cache")
	}
	if db.plans.len() == 0 {
		t.Fatal("plan cache empty before close")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if n := db.plans.len(); n != 0 {
		t.Fatalf("plan cache holds %d entries after Close, want 0", n)
	}
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	db := closableDB(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := db.Close(); err != nil {
				t.Errorf("concurrent close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatalf("close after close: %v", err)
	}
}
