package experiments

import (
	"fmt"
	"time"

	"gapplydb"
	"gapplydb/xmlpub"
)

// SweepPoint is one parameter setting of a rule's benchmark query.
type SweepPoint struct {
	Param   string
	Without time.Duration // rule disabled
	With    time.Duration // rule enabled (forced for cost-based rules)
}

// Benefit is the paper's metric: elapsed without the rule ÷ with it.
func (p SweepPoint) Benefit() float64 { return Ratio(p.Without, p.With) }

// Table1Row aggregates one rule's sweep the way Table 1 reports it.
type Table1Row struct {
	RuleClass string
	Rule      string
	Points    []SweepPoint
}

// Max is the best benefit across the sweep.
func (r Table1Row) Max() float64 {
	m := 0.0
	for _, p := range r.Points {
		if b := p.Benefit(); b > m {
			m = b
		}
	}
	return m
}

// Avg is the mean benefit across the sweep (losses included).
func (r Table1Row) Avg() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range r.Points {
		s += p.Benefit()
	}
	return s / float64(len(r.Points))
}

// AvgOverWins is the mean benefit across the points where the rule
// actually lowered cost (benefit > 1).
func (r Table1Row) AvgOverWins() float64 {
	s, n := 0.0, 0
	for _, p := range r.Points {
		if b := p.Benefit(); b > 1 {
			s += b
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// ruleSweep defines one Table 1 row: the rule, its parameterized query,
// and the option sets for the two arms.
type ruleSweep struct {
	class, rule, ruleName string
	points                []sweepQuery
}

type sweepQuery struct {
	param string
	query string
	// extraOpts apply to both arms (e.g. keeping GApply alive by
	// disabling the groupby conversion while measuring projection).
	extraOpts []gapplydb.QueryOption
}

// forced reports whether the rule is cost-based and must be forced in
// the "with" arm to measure its effect across the whole sweep.
func (r ruleSweep) forced() bool {
	switch r.ruleName {
	case "group-selection-exists", "group-selection-aggregate", "invariant-grouping":
		return true
	}
	return false
}

func table1Sweeps() []ruleSweep {
	selQ := func(x float64) string {
		return fmt.Sprintf(`select gapply(select p_name, p_retailprice from g where p_retailprice > %g)
			from partsupp, part where ps_partkey = p_partkey
			group by ps_suppkey : g`, x)
	}
	projQ := map[string]string{
		"2 tables (9 cols)": `select gapply(select p_name, p_retailprice, null from g
				union all select null, null, avg(p_retailprice) from g)
			from partsupp, part where ps_partkey = p_partkey
			group by ps_suppkey : g`,
		"3 tables (13 cols)": `select gapply(select p_name, p_retailprice, null from g
				union all select null, null, avg(p_retailprice) from g)
			from partsupp, part, supplier
			where ps_partkey = p_partkey and ps_suppkey = s_suppkey
			group by ps_suppkey : g`,
		"4 tables (16 cols)": `select gapply(select p_name, p_retailprice, null from g
				union all select null, null, avg(p_retailprice) from g)
			from partsupp, part, supplier, nation
			where ps_partkey = p_partkey and ps_suppkey = s_suppkey and s_nationkey = n_nationkey
			group by ps_suppkey : g`,
	}
	gbQ := func(cols string) string {
		return fmt.Sprintf(`select gapply(select avg(p_retailprice), min(p_retailprice),
				max(p_retailprice), count(*) from g)
			from partsupp, part where ps_partkey = p_partkey
			group by %s : g`, cols)
	}
	invQ := func(x float64) string {
		return fmt.Sprintf(`select gapply(select s_name, p_name, p_retailprice from g
				where p_retailprice = (select min(p_retailprice) from g))
			from partsupp, part, supplier
			where ps_partkey = p_partkey and ps_suppkey = s_suppkey and p_retailprice > %g
			group by s_suppkey : g`, x)
	}
	// The price domain is 900.00..2099.00 (dbgen's polynomial);
	// thresholds below sweep selectivity from ~100% down to ~1%.
	return []ruleSweep{
		{
			class: "Basic Rules", rule: "Placing Selection Before GApply", ruleName: "selection-before-gapply",
			points: []sweepQuery{
				{param: "sel≈100%", query: selQ(900)},
				{param: "sel≈50%", query: selQ(1500)},
				{param: "sel≈10%", query: selQ(1980)},
				{param: "sel≈5%", query: selQ(2040)},
				{param: "sel≈1%", query: selQ(2087)},
			},
		},
		{
			class: "Basic Rules", rule: "Placing Projection Before GApply", ruleName: "projection-before-gapply",
			points: []sweepQuery{
				{param: "2 tables (9 cols)", query: projQ["2 tables (9 cols)"]},
				{param: "3 tables (13 cols)", query: projQ["3 tables (13 cols)"]},
				{param: "4 tables (16 cols)", query: projQ["4 tables (16 cols)"]},
			},
		},
		{
			class: "Basic Rules", rule: "Converting GApply To groupby", ruleName: "gapply-to-groupby",
			points: []sweepQuery{
				{param: "group by suppkey", query: gbQ("ps_suppkey")},
				{param: "group by size", query: gbQ("p_size")},
				{param: "group by suppkey,size", query: gbQ("ps_suppkey, p_size")},
			},
		},
		{
			class: "Group Selection", rule: "Exists", ruleName: "group-selection-exists",
			points: existsSweep(),
		},
		{
			// Both arms disable projection pruning so the sweep isolates
			// what this rule changes: materializing whole groups versus a
			// pipelined sum/count per group (§4.2's memory argument).
			class: "Group Selection", rule: "Aggregate Selection", ruleName: "group-selection-aggregate",
			points: aggSelSweep(),
		},
		{
			// Isolated from projection pruning for the same reason: the
			// rule's gain is partitioning narrower pre-join rows and
			// joining per-group results instead of raw rows (§4.3).
			class: "GApply and Joins", rule: "Invariant Grouping", ruleName: "invariant-grouping",
			points: []sweepQuery{
				{param: "filter 0%", query: invQ(900), extraOpts: noPrune()},
				{param: "filter 50%", query: invQ(1500), extraOpts: noPrune()},
				{param: "filter 90%", query: invQ(1980), extraOpts: noPrune()},
			},
		},
	}
}

func existsSweep() []sweepQuery {
	var out []sweepQuery
	for _, x := range []struct {
		label string
		th    float64
	}{
		{"all groups qualify", 950},
		{"most qualify", 1800},
		{"some qualify", 2050},
		{"few qualify", 2095},
	} {
		q := xmlpub.ExpensiveSuppliers(x.th).GApplySQL()
		out = append(out, sweepQuery{param: x.label, query: q})
	}
	return out
}

func aggSelSweep() []sweepQuery {
	var out []sweepQuery
	for _, x := range []struct {
		label string
		th    float64
	}{
		{"all groups qualify", 900},
		{"~half qualify", 1495},
		{"few qualify", 1560},
	} {
		q := xmlpub.RichSuppliers(x.th).GApplySQL()
		out = append(out, sweepQuery{param: x.label, query: q, extraOpts: noPrune()})
	}
	return out
}

// noPrune disables projection pruning in both arms of a sweep.
func noPrune() []gapplydb.QueryOption {
	return []gapplydb.QueryOption{gapplydb.WithoutRule("projection-before-gapply")}
}

// Table1 runs every rule sweep and returns one row per rule.
func Table1(db *gapplydb.Database) ([]Table1Row, error) {
	var out []Table1Row
	for _, sweep := range table1Sweeps() {
		row := Table1Row{RuleClass: sweep.class, Rule: sweep.rule}
		for _, pt := range sweep.points {
			withoutOpts := append([]gapplydb.QueryOption{gapplydb.WithoutRule(sweep.ruleName)}, pt.extraOpts...)
			withOpts := append([]gapplydb.QueryOption{}, pt.extraOpts...)
			if sweep.forced() {
				withOpts = append(withOpts, gapplydb.ForceRule(sweep.ruleName))
			}
			if sweep.ruleName == "projection-before-gapply" || sweep.ruleName == "gapply-to-groupby" {
				// Keep the GApply alive in the measured arm where needed:
				// converting to groupby would short-circuit the projection
				// measurement.
				if sweep.ruleName == "projection-before-gapply" {
					withoutOpts = append(withoutOpts, gapplydb.WithoutRule("gapply-to-groupby"))
					withOpts = append(withOpts, gapplydb.WithoutRule("gapply-to-groupby"))
				}
			}
			tw, _, err := timeQuery(db, pt.query, withoutOpts...)
			if err != nil {
				return nil, err
			}
			tg, _, err := timeQuery(db, pt.query, withOpts...)
			if err != nil {
				return nil, err
			}
			row.Points = append(row.Points, SweepPoint{Param: pt.param, Without: tw, With: tg})
		}
		out = append(out, row)
	}
	return out, nil
}
