package experiments

import (
	"time"

	"gapplydb"
)

// SpoolRow is one row of the spooling experiment: a join-heavy GApply
// query's execution time with the invariant-subtree spool disabled and
// enabled, plus the counters that prove the spool engaged.
type SpoolRow struct {
	Query    string
	Off, On  time.Duration
	RowsOff  int
	RowsOn   int
	Builds   int64 // spool materializations (one per invariant subtree)
	Hits     int64 // replays served from the materialization
	ScansOff int64 // RowsScanned without the spool (per-group re-scans)
	ScansOn  int64 // RowsScanned with it (each base table read once)
}

// Speedup is elapsed-off over elapsed-on, the experiment's headline.
func (r SpoolRow) Speedup() float64 { return Ratio(r.Off, r.On) }

// spoolPairs are per-group plans that join the group variable against a
// base table: after selection pushdown the base-table side is
// group-invariant, so without spooling it is re-scanned (and the join
// table rebuilt) for every group.
func spoolPairs() []struct{ name, sql string } {
	return []struct{ name, sql string }{
		{"Q2j", `select gapply(select p_name, p_retailprice from g, part
				where ps_partkey = p_partkey and p_retailprice > 1200)
			from partsupp group by ps_suppkey : g`},
		{"Q3j", `select gapply(select p_name, ps_availqty from g, part
				where ps_partkey = p_partkey)
			from partsupp group by ps_suppkey : g`},
		{"Q4j", `select gapply(select min(p_retailprice), count(*) from g, part
				where ps_partkey = p_partkey and p_size < 30)
			from partsupp group by ps_suppkey : g`},
	}
}

// SpoolQueries exposes the spooling experiment's statements to the
// evaluation suite, so the differential and instrumentation batteries
// cover exactly what the harness measures.
func SpoolQueries() []SuiteQuery {
	var out []SuiteQuery
	for _, p := range spoolPairs() {
		out = append(out, SuiteQuery{Name: "spool/" + p.name, SQL: p.sql})
	}
	return out
}

// Spool measures each join-heavy query with the spool off and on.
func Spool(db *gapplydb.Database) ([]SpoolRow, error) {
	var out []SpoolRow
	for _, p := range spoolPairs() {
		tOff, resOff, err := timeQuery(db, p.sql, gapplydb.WithoutSpooling())
		if err != nil {
			return nil, err
		}
		tOn, resOn, err := timeQuery(db, p.sql)
		if err != nil {
			return nil, err
		}
		out = append(out, SpoolRow{
			Query: p.name, Off: tOff, On: tOn,
			RowsOff: len(resOff.Rows), RowsOn: len(resOn.Rows),
			Builds: resOn.Stats.SpoolBuilds, Hits: resOn.Stats.SpoolHits,
			ScansOff: resOff.Stats.RowsScanned, ScansOn: resOn.Stats.RowsScanned,
		})
	}
	return out, nil
}

// PlanCacheRow is one statement's cold-versus-warm comparison: total
// wall time (parse + bind + optimize + execute) when the statement plan
// cache misses and when it hits.
type PlanCacheRow struct {
	Query string
	Cold  time.Duration // cache invalidated before each run
	Warm  time.Duration // plan served from the cache
}

// Benefit is cold over warm: how much of a repeated statement's latency
// the compile phase was.
func (r PlanCacheRow) Benefit() float64 { return Ratio(r.Cold, r.Warm) }

// PlanCache measures compile amortization: a point lookup (the compile-
// dominated shape repeated publishing templates have) and the
// evaluation's GApply statements (compile is a small, fixed share of a
// multi-ms execution). Times are wall clock around the whole Query call
// — the execution cost is identical in both arms, so the difference is
// the compile phase the cache elides.
func PlanCache(db *gapplydb.Database) ([]PlanCacheRow, error) {
	qs := []struct{ name, sql string }{
		{"point", `select s_name, s_acctbal from supplier where s_suppkey = 42`},
		{"Q2j", spoolPairs()[0].sql},
		{"Q4", q4GApply},
	}
	var opts []gapplydb.QueryOption
	if DOP != 0 {
		opts = append(opts, gapplydb.WithDOP(DOP))
	}
	if Timeout != 0 {
		opts = append(opts, gapplydb.WithTimeout(Timeout))
	}
	// Isolating a sub-millisecond compile under multi-millisecond
	// execution noise needs a converged minimum, so this experiment runs
	// at least 20 iterations per arm regardless of Repeats.
	iters := Repeats
	if iters < 20 {
		iters = 20
	}
	measure := func(sql string, cold bool) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < iters; i++ {
			if cold {
				db.InvalidatePlanCache()
			}
			start := time.Now()
			if _, err := db.Query(sql, opts...); err != nil {
				return 0, err
			}
			if d := time.Since(start); i == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	var out []PlanCacheRow
	for _, q := range qs {
		cold, err := measure(q.sql, true)
		if err != nil {
			return nil, err
		}
		// Prime once, then every measured run hits.
		if _, err := db.Query(q.sql, opts...); err != nil {
			return nil, err
		}
		warm, err := measure(q.sql, false)
		if err != nil {
			return nil, err
		}
		out = append(out, PlanCacheRow{Query: q.name, Cold: cold, Warm: warm})
	}
	return out, nil
}
