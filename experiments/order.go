package experiments

import (
	"time"

	"gapplydb"
)

// OrderRow is one query measured with the ordered-index machinery on
// (the default) and off (WithoutIndexes): index-served ORDER BY versus
// a full sort, merge join versus hash join, ordered GApply partitioning
// versus the partition-phase sort. The outputs are verified identical
// before either timing is trusted — indexes are an access-path choice,
// never a semantics choice.
type OrderRow struct {
	Query string
	// NoIndex/Indexed are the minimum elapsed times across CompareRepeats
	// runs with the order pass disabled and enabled.
	NoIndex time.Duration
	Indexed time.Duration
	// Rows is the result cardinality (identical either way).
	Rows int
}

// Speedup is the ordered plan's advantage: no-index time ÷ indexed time.
func (r OrderRow) Speedup() float64 { return Ratio(r.NoIndex, r.Indexed) }

// orderQueries is the order-pass workload. Each query isolates one
// consumer of index order; all run at dop 1 so the partition phase and
// per-row costs are not hidden by parallelism.
func orderQueries() []struct {
	name, sql string
	opts      []gapplydb.QueryOption
} {
	return []struct {
		name, sql string
		opts      []gapplydb.QueryOption
	}{
		// ORDER BY served by an index: the no-index plan sorts every
		// lineitem row; the indexed plan gathers the presorted run and
		// elides the sort entirely.
		{"orderby_scan",
			"select l_suppkey, l_orderkey, l_quantity from lineitem order by l_suppkey",
			nil},
		// Range + ORDER BY: the seek bounds skip most of the run before
		// the (still present, now redundant) filter.
		{"orderby_range",
			"select ps_suppkey, ps_partkey, ps_availqty from partsupp where ps_suppkey >= 10 and ps_suppkey < 20 order by ps_suppkey",
			nil},
		// Merge join: a small probe side against a large sorted run. The
		// cost model only picks merge in this shape — a hash probe is
		// O(1) while the merge probe pays the binary search's log factor,
		// so merge wins by skipping the large side's hash build, not on
		// per-probe work.
		{"merge_join",
			"select c_name, o_orderkey, o_totalprice from customer, orders where c_custkey = o_custkey",
			nil},
		// Sort-partitioned GApply whose outer arrives in group-key order
		// through the index: the partition phase cuts runs instead of
		// sorting. The detail+summary inner keeps the GApply a real
		// GApply (a pure-aggregate inner would collapse to a GroupBy).
		{"sorted_gapply",
			"select gapply(select 0, l_partkey, l_quantity from g union all select 1, null, sum(l_quantity) from g) from lineitem group by l_suppkey : g",
			[]gapplydb.QueryOption{gapplydb.WithPartition("sort")}},
	}
}

// Order measures the order-pass workload with indexes on and off at
// serial degree. Every pair of runs is checked for identical output
// order and content before its timings are reported.
func Order(db *gapplydb.Database) ([]OrderRow, error) {
	var out []OrderRow
	for _, q := range orderQueries() {
		noOpts := append([]gapplydb.QueryOption{gapplydb.WithDOP(1), gapplydb.WithoutIndexes()}, q.opts...)
		nt, nres, err := timeEngine(db, q.sql, noOpts...)
		if err != nil {
			return nil, err
		}
		ixOpts := append([]gapplydb.QueryOption{gapplydb.WithDOP(1)}, q.opts...)
		it, ires, err := timeEngine(db, q.sql, ixOpts...)
		if err != nil {
			return nil, err
		}
		if err := sameResult(q.name, nres, ires); err != nil {
			return nil, err
		}
		out = append(out, OrderRow{Query: q.name, NoIndex: nt, Indexed: it, Rows: len(ires.Rows)})
	}
	return out, nil
}
