package experiments

import (
	"fmt"
	"time"

	"gapplydb"
	"gapplydb/internal/bind"
	"gapplydb/internal/exec"
	"gapplydb/internal/schema"
	"gapplydb/internal/sql"
	"gapplydb/internal/storage"
	"gapplydb/internal/types"
)

// ClientSimResult compares the real server-side GApply against the
// paper's §5.1 client-side simulation of it on query Q4.
type ClientSimResult struct {
	ServerSide time.Duration
	ClientSide time.Duration
	Rows       int
}

// Overhead is how much slower the client-side simulation runs; the
// paper reports ≈20% for Q4 and argues the simulation is conservative,
// i.e. real server-side numbers would beat the client-simulated ones in
// Figure 8.
func (r ClientSimResult) Overhead() float64 {
	return Ratio(r.ClientSide, r.ServerSide)
}

// ClientSim runs Q4 both ways. The simulation follows §5.1: the outer
// query's result is materialized sorted by the grouping columns (the
// partition phase as an ORDER BY), each group's range is copied into a
// temporary relation, and the per-group query is executed against it —
// paying materialization, copying and per-query overheads, exactly the
// costs the paper's methodology acknowledges over-counting.
func ClientSim(db *gapplydb.Database) (ClientSimResult, error) {
	server, _, err := timeQuery(db, q4GApply)
	if err != nil {
		return ClientSimResult{}, err
	}

	// Client-side simulation.
	const outerQ = `
		select ps_suppkey, p_size, p_name, p_retailprice
		from partsupp, part where ps_partkey = p_partkey
		order by ps_suppkey, p_size`
	const pgq = `
		select p_name, p_retailprice from tmpg
		where p_retailprice > (select avg(p_retailprice) from tmpg)`

	best := time.Duration(0)
	rows := 0
	for rep := 0; rep < Repeats; rep++ {
		start := time.Now()
		n, err := runClientSim(db, outerQ, pgq)
		if err != nil {
			return ClientSimResult{}, err
		}
		elapsed := time.Since(start)
		if rep == 0 || elapsed < best {
			best = elapsed
		}
		rows = n
	}
	return ClientSimResult{ServerSide: server, ClientSide: best, Rows: rows}, nil
}

func runClientSim(db *gapplydb.Database, outerQ, pgq string) (int, error) {
	outer, err := db.Query(outerQ)
	if err != nil {
		return 0, err
	}
	// Scratch catalog holding the per-group temporary relation.
	scratch := storage.NewCatalog()
	tmp, err := scratch.Create(&schema.TableDef{
		Name: "tmpg",
		Schema: schema.New(
			schema.Column{Name: "ps_suppkey", Type: types.KindInt},
			schema.Column{Name: "p_size", Type: types.KindInt},
			schema.Column{Name: "p_name", Type: types.KindString},
			schema.Column{Name: "p_retailprice", Type: types.KindFloat},
		),
	})
	if err != nil {
		return 0, err
	}
	stmt, _, err := sql.Parse(pgq)
	if err != nil {
		return 0, err
	}

	toRow := func(vals []any) (types.Row, error) {
		r := make(types.Row, len(vals))
		for i, v := range vals {
			switch x := v.(type) {
			case nil:
				r[i] = types.Null
			case int64:
				r[i] = types.NewInt(x)
			case float64:
				r[i] = types.NewFloat(x)
			case string:
				r[i] = types.NewString(x)
			case bool:
				r[i] = types.NewBool(x)
			default:
				return nil, fmt.Errorf("experiments: unsupported value %T", v)
			}
		}
		return r, nil
	}

	results := 0
	flush := func() error {
		if len(tmp.Rows) == 0 {
			return nil
		}
		// Per-group binding and execution: the per-query overhead the
		// paper's simulation methodology pays on every group.
		plan, err := bind.New(scratch).Bind(stmt)
		if err != nil {
			return err
		}
		res, err := exec.Run(plan, exec.NewContext(scratch))
		if err != nil {
			return err
		}
		results += len(res.Rows)
		tmp.Rows = tmp.Rows[:0]
		return nil
	}

	var curKey [2]any
	haveKey := false
	for _, row := range outer.Rows {
		key := [2]any{row[0], row[1]}
		if haveKey && key != curKey {
			if err := flush(); err != nil {
				return 0, err
			}
		}
		curKey, haveKey = key, true
		r, err := toRow(row)
		if err != nil {
			return 0, err
		}
		tmp.Rows = append(tmp.Rows, r)
	}
	if err := flush(); err != nil {
		return 0, err
	}
	return results, nil
}
