// Package experiments regenerates the paper's evaluation (§5): Figure 8
// (speedup from GApply on queries Q1–Q4) and Table 1 (effect of each
// transformation rule), plus the §5.1.1 client-side-simulation
// comparison. Both the root benchmark suite (bench_test.go) and
// cmd/bench drive this package.
//
// Absolute times differ from the paper's 2003 testbed (5 GB TPC-H on a
// 1 GHz server); the shapes — who wins, by roughly what factor, where a
// rule starts losing — are the reproduction target.
package experiments

import (
	"fmt"
	"time"

	"gapplydb"
)

// Repeats is how many times each query runs per measurement; the minimum
// elapsed time is kept (steady-state, least-noise estimator).
var Repeats = 3

// DOP caps GApply parallelism for every measured query. 0 keeps the
// engine default (runtime.GOMAXPROCS(0)); 1 reproduces the paper's
// serial execution phase. cmd/bench's -dop flag sets this.
var DOP = 0

// Timeout caps each measured query's wall clock; a run that exceeds it
// fails with context.DeadlineExceeded instead of hanging the suite.
// 0 (the default) means unlimited. cmd/bench's -timeout flag sets this.
var Timeout time.Duration = 0

// timeQuery returns the minimum execution time of the query across
// Repeats runs, and the result of the last run.
func timeQuery(db *gapplydb.Database, q string, opts ...gapplydb.QueryOption) (time.Duration, *gapplydb.Result, error) {
	if DOP != 0 || Timeout != 0 {
		opts = append([]gapplydb.QueryOption{}, opts...)
		if DOP != 0 {
			opts = append(opts, gapplydb.WithDOP(DOP))
		}
		if Timeout != 0 {
			opts = append(opts, gapplydb.WithTimeout(Timeout))
		}
	}
	best := time.Duration(0)
	var last *gapplydb.Result
	for i := 0; i < Repeats; i++ {
		res, err := db.Query(q, opts...)
		if err != nil {
			return 0, nil, fmt.Errorf("experiments: %w\nquery: %s", err, q)
		}
		if i == 0 || res.Elapsed < best {
			best = res.Elapsed
		}
		last = res
	}
	return best, last, nil
}

// Ratio renders a speedup factor the way Figure 8's y-axis does.
func Ratio(without, with time.Duration) float64 {
	if with <= 0 {
		return 0
	}
	return float64(without) / float64(with)
}
