package experiments

import (
	"testing"
	"time"

	"gapplydb"
)

// The experiment suite runs at a very small scale factor in tests: the
// goal here is correctness of the harness (queries execute, both arms
// agree on results, aggregation math is right), not the measured ratios
// — those are exercised by the benchmarks.
func testDB(t *testing.T) *gapplydb.Database {
	t.Helper()
	old := Repeats
	Repeats = 1
	t.Cleanup(func() { Repeats = old })
	db, err := gapplydb.OpenTPCH(0.001)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFigure8Harness(t *testing.T) {
	db := testDB(t)
	rows, err := Figure8(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := []string{"Q1", "Q2", "Q3", "Q4"}
	for i, r := range rows {
		if r.Query != names[i] {
			t.Errorf("row %d = %q", i, r.Query)
		}
		if r.With <= 0 || r.Without <= 0 {
			t.Errorf("%s: zero timing", r.Query)
		}
		if r.Speedup() <= 0 {
			t.Errorf("%s: speedup = %v", r.Query, r.Speedup())
		}
		if r.RowsWith == 0 || r.RowsWithout == 0 {
			t.Errorf("%s: empty results (with=%d without=%d)", r.Query, r.RowsWith, r.RowsWithout)
		}
	}
	// Q1/Q3's two plans compute identical multisets, so row counts match.
	if rows[0].RowsWith != rows[0].RowsWithout {
		t.Errorf("Q1 row counts differ: %d vs %d", rows[0].RowsWith, rows[0].RowsWithout)
	}
	if rows[2].RowsWith != rows[2].RowsWithout {
		t.Errorf("Q3 row counts differ: %d vs %d", rows[2].RowsWith, rows[2].RowsWithout)
	}
}

func TestTable1Harness(t *testing.T) {
	db := testDB(t)
	rows, err := Table1(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rules = %d, want 6 (the paper's Table 1 rows)", len(rows))
	}
	wantRules := []string{
		"Placing Selection Before GApply",
		"Placing Projection Before GApply",
		"Converting GApply To groupby",
		"Exists",
		"Aggregate Selection",
		"Invariant Grouping",
	}
	for i, r := range rows {
		if r.Rule != wantRules[i] {
			t.Errorf("row %d = %q, want %q", i, r.Rule, wantRules[i])
		}
		if len(r.Points) < 3 {
			t.Errorf("%s: only %d sweep points", r.Rule, len(r.Points))
		}
		for _, p := range r.Points {
			if p.With <= 0 || p.Without <= 0 {
				t.Errorf("%s/%s: zero timing", r.Rule, p.Param)
			}
		}
		if r.Max() < r.Avg() {
			t.Errorf("%s: max %v < avg %v", r.Rule, r.Max(), r.Avg())
		}
		if r.AvgOverWins() != 0 && r.AvgOverWins() < 1 {
			t.Errorf("%s: avg-over-wins %v < 1", r.Rule, r.AvgOverWins())
		}
	}
}

func TestTable1RowMath(t *testing.T) {
	r := Table1Row{Points: []SweepPoint{
		{Without: 200 * time.Millisecond, With: 100 * time.Millisecond}, // benefit 2
		{Without: 50 * time.Millisecond, With: 100 * time.Millisecond},  // benefit 0.5
		{Without: 400 * time.Millisecond, With: 100 * time.Millisecond}, // benefit 4
	}}
	if got := r.Max(); got != 4 {
		t.Errorf("Max = %v", got)
	}
	if got := r.Avg(); got < 2.16 || got > 2.17 {
		t.Errorf("Avg = %v", got)
	}
	if got := r.AvgOverWins(); got != 3 {
		t.Errorf("AvgOverWins = %v", got)
	}
	empty := Table1Row{}
	if empty.Max() != 0 || empty.Avg() != 0 || empty.AvgOverWins() != 0 {
		t.Error("empty row math")
	}
}

func TestClientSimHarness(t *testing.T) {
	db := testDB(t)
	res, err := ClientSim(db)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerSide <= 0 || res.ClientSide <= 0 {
		t.Fatalf("timings = %+v", res)
	}
	// The simulation must compute the same result set as the operator.
	server, err := db.Query(q4GApply)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != len(server.Rows) {
		t.Errorf("client sim produced %d rows, server %d", res.Rows, len(server.Rows))
	}
	// And it carries overhead (the point of §5.1.1): strictly slower.
	if res.Overhead() <= 1 {
		t.Errorf("client simulation overhead = %v, want > 1", res.Overhead())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(200, 100) != 2 {
		t.Error("Ratio")
	}
	if Ratio(100, 0) != 0 {
		t.Error("Ratio zero divisor")
	}
}
