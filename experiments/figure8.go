package experiments

import (
	"time"

	"gapplydb"
	"gapplydb/xmlpub"
)

// Figure8Row is one bar of Figure 8: a query's execution time without
// GApply (sorted-outer-union / flat-SQL plan) and with it.
type Figure8Row struct {
	Query   string
	Without time.Duration
	With    time.Duration
	// RowsWithout/RowsWith sanity-check that both plans did the same
	// logical work (the "without" plan may emit 0-count rows differently
	// on empty subsets; see the Q2 note in EXPERIMENTS.md).
	RowsWithout int
	RowsWith    int
}

// Speedup is the Figure 8 y-axis value.
func (r Figure8Row) Speedup() float64 { return Ratio(r.Without, r.With) }

// q4GApply is the paper's Q4 in the extended syntax: per (supplier,
// size), the parts priced above that group's average.
const q4GApply = `
	select gapply(select p_name, p_retailprice from g
	              where p_retailprice > (select avg(p_retailprice) from g))
	from partsupp, part
	where ps_partkey = p_partkey
	group by ps_suppkey, p_size : g`

// q4Flat is the paper's §5.2 SQL formulation of Q4: join the grouped
// averages back with another copy of the join.
const q4Flat = `
	select tmp.k1, p_name, p_size, p_retailprice
	from (select ps_suppkey, p_size, avg(p_retailprice)
	      from partsupp, part
	      where p_partkey = ps_partkey
	      group by ps_suppkey, p_size) as tmp(k1, k2, avgprice),
	     partsupp, part
	where ps_partkey = p_partkey
	  and ps_suppkey = tmp.k1
	  and p_size = tmp.k2
	  and p_retailprice > tmp.avgprice
	order by tmp.k1`

// Figure8 measures Q1–Q4 with and without GApply. The "without" plans
// are the sorted-outer-union translations (Q1–Q3) and the flat SQL
// formulation (Q4), run through the full optimizer — including
// decorrelation, so the baseline is what a production engine without
// GApply would execute, not a naive per-row re-evaluation.
func Figure8(db *gapplydb.Database) ([]Figure8Row, error) {
	type pair struct {
		name          string
		without, with string
	}
	pairs := []pair{
		{"Q1", xmlpub.Q1().SortedOuterUnionSQL(), xmlpub.Q1().GApplySQL()},
		{"Q2", xmlpub.Q2().SortedOuterUnionSQL(), xmlpub.Q2().GApplySQL()},
		{"Q3", xmlpub.Q3(0.9, 1.1).SortedOuterUnionSQL(), xmlpub.Q3(0.9, 1.1).GApplySQL()},
		{"Q4", q4Flat, q4GApply},
	}
	var out []Figure8Row
	for _, p := range pairs {
		tw, resW, err := timeQuery(db, p.without)
		if err != nil {
			return nil, err
		}
		tg, resG, err := timeQuery(db, p.with)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure8Row{
			Query: p.name, Without: tw, With: tg,
			RowsWithout: len(resW.Rows), RowsWith: len(resG.Rows),
		})
	}
	return out, nil
}
