package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"gapplydb"
	"gapplydb/xmlpub"
)

// CompareRow is one query measured on both execution engines at the
// same degree of parallelism: the row-at-a-time oracle versus the
// default vectorized batch engine. The outputs are verified identical
// before either timing is trusted.
type CompareRow struct {
	Query string
	// Row/Batch are the minimum elapsed times across Repeats runs.
	Row   time.Duration
	Batch time.Duration
	// Rows is the result cardinality (identical on both engines).
	Rows int
}

// Speedup is the batch engine's advantage: row time ÷ batch time.
func (r CompareRow) Speedup() float64 { return Ratio(r.Row, r.Batch) }

// compareQueries is the engine-comparison workload: the Figure 8
// pairs in both translations. The sorted-outer-union sides (*_sou) and
// the flat-SQL Q4 are the scan/filter/join-heavy plans where
// vectorization has the most surface; the GApply sides measure the
// batch partition/per-group path.
func compareQueries() []struct{ name, sql string } {
	return []struct{ name, sql string }{
		{"Q1_sou", xmlpub.Q1().SortedOuterUnionSQL()},
		{"Q1_gapply", xmlpub.Q1().GApplySQL()},
		{"Q2_sou", xmlpub.Q2().SortedOuterUnionSQL()},
		{"Q2_gapply", xmlpub.Q2().GApplySQL()},
		{"Q3_sou", xmlpub.Q3(0.9, 1.1).SortedOuterUnionSQL()},
		{"Q3_gapply", xmlpub.Q3(0.9, 1.1).GApplySQL()},
		{"Q4_flat", q4Flat},
		{"Q4_gapply", q4GApply},
	}
}

// CompareRepeats is how many times each (query, engine) pair runs; the
// minimum is kept. Engine deltas are fractions of a GC pause, so this
// is deliberately higher than the suite-wide Repeats: with a collection
// landing inside roughly every other run, min-of-3 measures which
// engine got lucky, not which is faster.
var CompareRepeats = 9

// timeEngine is timeQuery with the comparison's noise controls: more
// repeats, and a forced collection before each timed run so one
// engine's garbage doesn't land as a pause inside the other's window.
func timeEngine(db *gapplydb.Database, q string, opts ...gapplydb.QueryOption) (time.Duration, *gapplydb.Result, error) {
	best := time.Duration(0)
	var last *gapplydb.Result
	for i := 0; i < CompareRepeats; i++ {
		runtime.GC()
		res, err := db.Query(q, opts...)
		if err != nil {
			return 0, nil, fmt.Errorf("experiments: %w\nquery: %s", err, q)
		}
		if i == 0 || res.Elapsed < best {
			best = res.Elapsed
		}
		last = res
	}
	return best, last, nil
}

// Compare measures the engine-comparison workload on both engines at
// serial degree (dop 1, the paper's configuration and the cleanest
// apples-to-apples: no parallel partition phase hiding per-row cost).
// Every pair of runs is checked for identical output order and content
// before its timings are reported.
func Compare(db *gapplydb.Database) ([]CompareRow, error) {
	var out []CompareRow
	for _, q := range compareQueries() {
		rt, rres, err := timeEngine(db, q.sql, gapplydb.WithDOP(1), gapplydb.WithRowExecution())
		if err != nil {
			return nil, err
		}
		bt, bres, err := timeEngine(db, q.sql, gapplydb.WithDOP(1))
		if err != nil {
			return nil, err
		}
		if err := sameResult(q.name, rres, bres); err != nil {
			return nil, err
		}
		out = append(out, CompareRow{Query: q.name, Row: rt, Batch: bt, Rows: len(bres.Rows)})
	}
	return out, nil
}

// sameResult rejects a timing pair whose engines disagree — a
// comparison between different computations measures nothing.
func sameResult(name string, row, batch *gapplydb.Result) error {
	if len(row.Rows) != len(batch.Rows) {
		return fmt.Errorf("experiments: %s: engines disagree: %d rows (row) vs %d (batch)",
			name, len(row.Rows), len(batch.Rows))
	}
	for i := range row.Rows {
		if !reflect.DeepEqual(row.Rows[i], batch.Rows[i]) {
			return fmt.Errorf("experiments: %s: engines disagree at row %d: %v vs %v",
				name, i, row.Rows[i], batch.Rows[i])
		}
	}
	return nil
}
