package experiments

import (
	"time"

	"gapplydb"
)

// QueryReport is one evaluation query's observability record: the plan
// fingerprint and estimates, the optimizer's rule trace, the analyzed
// plan (per-operator actual rows/loops/timings), and execution totals.
// The bench harness serializes a slice of these to JSON so plan or
// performance regressions diff cleanly run-over-run.
type QueryReport struct {
	Name          string
	SQL           string
	PlanHash      string
	EstimatedRows float64
	EstimatedCost float64
	Elapsed       time.Duration
	Rows          int
	Stats         gapplydb.ExecStats
	Trace         []gapplydb.RuleApplication
	// Plan is the EXPLAIN ANALYZE rendering, one operator per line with
	// estimated and actual figures.
	Plan string
}

// Reports runs every suite query once under EXPLAIN ANALYZE and
// collects its observability record. DOP applies as in the timed
// experiments.
func Reports(db *gapplydb.Database) ([]QueryReport, error) {
	queries := SuiteQueries()
	out := make([]QueryReport, 0, len(queries))
	for _, q := range queries {
		e, err := db.ExplainAnalyze(q.SQL, gapplydb.WithDOP(DOP))
		if err != nil {
			return nil, err
		}
		out = append(out, QueryReport{
			Name:          q.Name,
			SQL:           q.SQL,
			PlanHash:      e.PlanHash,
			EstimatedRows: e.EstimatedRows,
			EstimatedCost: e.EstimatedCost,
			Elapsed:       e.Result.Elapsed,
			Rows:          len(e.Result.Rows),
			Stats:         e.Result.Stats,
			Trace:         e.Trace,
			Plan:          e.Plan,
		})
	}
	return out, nil
}
