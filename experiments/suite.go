package experiments

import (
	"strings"

	"gapplydb/xmlpub"
)

// SuiteQuery is one statement of the evaluation workload, with the
// execution-feasibility flag differential tests need.
type SuiteQuery struct {
	Name string
	SQL  string
	// Heavy marks statements whose raw (un-optimized) plan is intractable
	// even at tiny scale factors: 3-way-or-worse cross products, or
	// correlated subqueries that without decorrelation re-scan an
	// unpushed join per outer row.
	Heavy bool
}

// SuiteQueries returns every SQL statement the Figure 8, Table 1 and
// spooling experiments execute — the full evaluation workload — so
// differential and regression tests cover exactly what the harness
// measures.
func SuiteQueries() []SuiteQuery {
	out := []SuiteQuery{
		{Name: "figure8/Q1/without", SQL: xmlpub.Q1().SortedOuterUnionSQL()},
		{Name: "figure8/Q1/with", SQL: xmlpub.Q1().GApplySQL()},
		{Name: "figure8/Q2/without", SQL: xmlpub.Q2().SortedOuterUnionSQL(), Heavy: true},
		{Name: "figure8/Q2/with", SQL: xmlpub.Q2().GApplySQL()},
		{Name: "figure8/Q3/without", SQL: xmlpub.Q3(0.9, 1.1).SortedOuterUnionSQL(), Heavy: true},
		{Name: "figure8/Q3/with", SQL: xmlpub.Q3(0.9, 1.1).GApplySQL()},
		{Name: "figure8/Q4/without", SQL: q4Flat, Heavy: true},
		{Name: "figure8/Q4/with", SQL: q4GApply},
	}
	out = append(out, SpoolQueries()...)
	seen := map[string]bool{}
	for _, q := range out {
		seen[q.SQL] = true
	}
	for _, sweep := range table1Sweeps() {
		for _, pt := range sweep.points {
			if seen[pt.query] {
				continue
			}
			seen[pt.query] = true
			out = append(out, SuiteQuery{
				Name: "table1/" + sweep.ruleName + "/" + pt.param,
				SQL:  pt.query,
				// The invariant-grouping sweep and the wider projection
				// sweeps put 3-4 tables in FROM.
				Heavy: sweep.ruleName == "invariant-grouping" ||
					strings.Contains(pt.param, "3 tables") ||
					strings.Contains(pt.param, "4 tables"),
			})
		}
	}
	return out
}
