package gapplydb_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"gapplydb"
	"gapplydb/xmlpub"
)

// The integration battery runs every workload query under every
// optimizer configuration and checks all configurations compute the
// same multiset — end-to-end semantics preservation over real TPC-H
// data, the strongest cross-module invariant the engine has.

var (
	integOnce sync.Once
	integDB   *gapplydb.Database
)

func integDatabase(t *testing.T) *gapplydb.Database {
	t.Helper()
	integOnce.Do(func() {
		db, err := gapplydb.OpenTPCH(0.001)
		if err != nil {
			panic(err)
		}
		integDB = db
	})
	return integDB
}

// workloadQuery marks statements whose raw (un-optimized) plan is a
// 3-way-or-worse cross product: executing those without selection
// pushdown is intractable even at tiny scale, so the no-optimizer
// configuration skips them.
type workloadQuery struct {
	sql   string
	heavy bool
}

// workloadQueries is the full battery: the paper's evaluation queries,
// the rule-benchmark queries, and general SQL covering every operator.
func workloadQueries() []workloadQuery {
	qs := []string{
		// Figure 8 queries, both translations.
		xmlpub.Q1().GApplySQL(),
		xmlpub.Q1().SortedOuterUnionSQL(),
		xmlpub.Q2().GApplySQL(),
		xmlpub.Q3(0.9, 1.1).GApplySQL(),
		xmlpub.ExpensiveSuppliers(2050).GApplySQL(),
		xmlpub.RichSuppliers(1500).GApplySQL(),
		// Q4 both ways.
		`select gapply(select p_name, p_retailprice from g
			where p_retailprice > (select avg(p_retailprice) from g))
		 from partsupp, part where ps_partkey = p_partkey
		 group by ps_suppkey, p_size : g`,
		`select tmp.k1, p_name, p_size, p_retailprice
		 from (select ps_suppkey, p_size, avg(p_retailprice)
		       from partsupp, part where p_partkey = ps_partkey
		       group by ps_suppkey, p_size) as tmp(k1, k2, avgprice),
		      partsupp, part
		 where ps_partkey = p_partkey and ps_suppkey = tmp.k1
		   and p_size = tmp.k2 and p_retailprice > tmp.avgprice`,
		// Invariant grouping shape.
		`select gapply(select s_name, p_name, p_retailprice from g
			where p_retailprice = (select min(p_retailprice) from g))
		 from partsupp, part, supplier
		 where ps_partkey = p_partkey and ps_suppkey = s_suppkey
		 group by s_suppkey : g`,
		// Nested grouping inside the per-group query.
		`select gapply(select p_size, count(*), avg(p_retailprice) from g group by p_size)
		 from partsupp, part where ps_partkey = p_partkey
		 group by ps_suppkey : g`,
		// Per-group ordering (top-like shapes).
		`select gapply(select p_name from g order by p_retailprice desc)
		 from partsupp, part where ps_partkey = p_partkey
		 group by ps_suppkey : g`,
		// Plain SQL: joins, grouping, having, order, distinct, exists.
		`select ps_suppkey, count(*) n, avg(p_retailprice)
		 from partsupp, part where ps_partkey = p_partkey
		 group by ps_suppkey having count(*) > 50 order by n desc`,
		`select distinct p_brand from part order by p_brand`,
		`select s_name from supplier where exists
			(select ps_partkey from partsupp where ps_suppkey = s_suppkey)`,
		`select s_name from supplier where not exists
			(select ps_partkey from partsupp where ps_suppkey = s_suppkey)`,
		`select n_name, count(*) from supplier, nation
		 where s_nationkey = n_nationkey group by n_name`,
		`select c_mktsegment, avg(o_totalprice) from customer, orders
		 where c_custkey = o_custkey group by c_mktsegment`,
		// Correlated scalar subquery (decorrelation path).
		`select p_name from part
		 where p_retailprice > 1.05 * (select avg(p_retailprice) from part)`,
		// Unions of heterogeneous branches.
		`select p_brand, count(*) from part group by p_brand
		 union all
		 select p_brand, min(p_size) from part group by p_brand`,
	}
	heavy := map[int]bool{7: true, 8: true} // Q4-flat, invariant (3-way FROM)
	out := make([]workloadQuery, len(qs))
	for i, q := range qs {
		out[i] = workloadQuery{sql: q, heavy: heavy[i]}
	}
	return out
}

// canonical renders a result as order-independent multiset keys.
func canonical(res *gapplydb.Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		out[i] = fmt.Sprint(row)
	}
	sort.Strings(out)
	return out
}

func equalCanonical(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOptimizerConfigurationsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("configuration battery skipped in -short mode")
	}
	db := integDatabase(t)
	configs := []struct {
		name string
		opts []gapplydb.QueryOption
	}{
		{"default", nil},
		{"no-optimizer", []gapplydb.QueryOption{gapplydb.WithoutOptimizer()}},
		{"sort-partition", []gapplydb.QueryOption{gapplydb.WithPartition("sort")}},
		{"hash-partition", []gapplydb.QueryOption{gapplydb.WithPartition("hash")}},
	}
	for _, name := range gapplydb.RuleNames() {
		configs = append(configs, struct {
			name string
			opts []gapplydb.QueryOption
		}{"without-" + name, []gapplydb.QueryOption{gapplydb.WithoutRule(name)}})
	}
	forceable := []string{"group-selection-exists", "group-selection-aggregate", "invariant-grouping"}
	for _, name := range forceable {
		configs = append(configs, struct {
			name string
			opts []gapplydb.QueryOption
		}{"force-" + name, []gapplydb.QueryOption{gapplydb.ForceRule(name)}})
	}

	for qi, wq := range workloadQueries() {
		q := wq.sql
		base, err := db.Query(q)
		if err != nil {
			t.Fatalf("query %d: %v\n%s", qi, err, q)
		}
		want := canonical(base)
		for _, cfg := range configs {
			if cfg.name == "no-optimizer" && wq.heavy {
				continue // raw 3-way cross products are intractable
			}
			res, err := db.Query(q, cfg.opts...)
			if err != nil {
				t.Fatalf("query %d under %s: %v\n%s", qi, cfg.name, err, q)
			}
			if !equalCanonical(want, canonical(res)) {
				plan, _ := db.Explain(q, cfg.opts...)
				t.Fatalf("query %d: config %s changed results (%d vs %d rows)\nquery: %s\nplan:\n%s",
					qi, cfg.name, len(base.Rows), len(res.Rows), q, plan)
			}
		}
	}
}

func TestWorkloadResultsAreSane(t *testing.T) {
	db := integDatabase(t)
	// Cross-check a few computed values against directly computed facts.
	parts, err := db.Query("select count(*), avg(p_retailprice), min(p_retailprice), max(p_retailprice) from part")
	if err != nil {
		t.Fatal(err)
	}
	n := parts.Rows[0][0].(int64)
	avg := parts.Rows[0][1].(float64)
	lo := parts.Rows[0][2].(float64)
	hi := parts.Rows[0][3].(float64)
	if n != 200 {
		t.Errorf("parts = %d", n)
	}
	if lo < 900 || hi > 2100 || avg < lo || avg > hi {
		t.Errorf("price stats insane: lo=%v avg=%v hi=%v", lo, avg, hi)
	}
	// Per-supplier group counts must sum to |partsupp|.
	res, err := db.Query(`select gapply(select count(*) from g) as (n)
		from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g`)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, r := range res.Rows {
		sum += r[1].(int64)
	}
	ps, _ := db.Query("select count(*) from partsupp")
	if sum != ps.Rows[0][0].(int64) {
		t.Errorf("group counts sum %d != |partsupp| %v", sum, ps.Rows[0][0])
	}
}

func TestGApplyOutputClusteredOnTPCH(t *testing.T) {
	// The clustering guarantee the constant-space tagger depends on, on
	// real data and under both partition strategies.
	db := integDatabase(t)
	for _, strategy := range []string{"hash", "sort"} {
		res, err := db.Query(xmlpub.Q1().GApplySQL(), gapplydb.WithPartition(strategy))
		if err != nil {
			t.Fatal(err)
		}
		seen := map[any]bool{}
		var cur any
		for i, row := range res.Rows {
			k := row[0]
			if i == 0 || k != cur {
				if seen[k] {
					t.Fatalf("[%s] key %v appears in two separate runs", strategy, k)
				}
				seen[k] = true
				cur = k
			}
		}
	}
}

func TestXMLPublishingOnTPCH(t *testing.T) {
	db := integDatabase(t)
	for _, q := range []*xmlpub.FLWR{xmlpub.Q1(), xmlpub.Q2(), xmlpub.Q3(0.9, 1.1)} {
		var ga, sou stringsBuilder
		if _, err := xmlpub.Publish(db, q, xmlpub.GApply, &ga); err != nil {
			t.Fatal(err)
		}
		if _, err := xmlpub.Publish(db, q, xmlpub.SortedOuterUnion, &sou); err != nil {
			t.Fatal(err)
		}
		if ga.String() != sou.String() {
			t.Errorf("strategies disagree on TPC-H data for %T", q)
		}
		if len(ga.String()) == 0 {
			t.Error("empty document")
		}
	}
}

// stringsBuilder avoids importing strings just for Builder in this file.
type stringsBuilder struct{ buf []byte }

func (b *stringsBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *stringsBuilder) String() string { return string(b.buf) }
